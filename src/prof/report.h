// Aggregation and export for the zone profiler (prof/profiler.h):
//
//   * Folded-stack text ("a;b;c <self-value>" per line) consumable by
//     standard flamegraph tooling (flamegraph.pl, speedscope, inferno),
//     for any of the recorded metrics (host CPU, allocs, alloc bytes,
//     booked sim CPU/disk).
//   * A top-K budget table: per-zone calls, CPU-per-op and allocs-per-op
//     — the numbers the protocol-flattening work is measured against.
//   * A zones JSON blob (per-leaf-zone inclusive totals + per-call
//     derived rates) for bench baselines.
//   * Chrome-trace overlay: the profiler's zone-exit ring rendered as a
//     separate "profiler" track merged into the same JSON as the
//     sim-time span trees from src/trace, so host cost overlays protocol
//     structure in Perfetto.
//   * metrics::Registry bridging: every zone path gets callback metrics
//     (prof.zone.{cpu_ns,calls,allocs,alloc_bytes}{zone=...}) the moment
//     it first runs, so the telemetry scraper/exporters pick profiles up
//     for free. On profiler detach the callbacks are frozen to their
//     final values, so a registry outliving the profiler stays safe.
#pragma once

#include <string>
#include <vector>

#include "prof/profiler.h"
#include "trace/trace.h"

namespace repro::metrics {
class Registry;
}

namespace repro::prof {

enum class Metric {
  kCpuNs,
  kAllocs,
  kAllocBytes,
  kSimCpuNs,
  kSimDiskBytes,
};

// One "path value" line per zone path with a non-zero *self* value
// (flamegraph folded-stack convention; values are exclusive so the
// flamegraph's widths add up). Lines are emitted in deterministic
// (depth-first tree) order.
std::string FoldedStacks(const Profiler& p, Metric metric);
bool WriteFoldedStacks(const std::string& path, const Profiler& p,
                       Metric metric);

// Human-readable top-K table of zones aggregated by leaf name, sorted by
// inclusive host CPU descending: calls, cpu, cpu/call, allocs,
// allocs/call, bytes/call, booked sim cpu.
std::string BudgetTable(const Profiler& p, size_t top_k = 20);

// {"zones":{"<name>":{calls, cpu_ns, allocs, ..., allocs_per_call,
// bytes_per_call, cpu_us_per_call}}} aggregated by leaf zone name.
// Deterministic (name-sorted) field order.
std::string ZonesJson(const Profiler& p);

// Comma-separated Chrome-trace "X" event fragment (no brackets) for the
// profiler's zone-exit ring: ts = sim time at the zone's event, dur =
// host microseconds, all on one synthetic `pid` so Perfetto shows a
// dedicated "profiler" track. Empty string when the ring is empty.
std::string ZoneChromeEvents(const Profiler& p, int pid = 999000);

// ChromeTraceJson(traces) with the profiler track spliced into the same
// traceEvents array. Writes to `path`; false on I/O failure.
bool WriteChromeTraceWithZones(const std::string& path,
                               const std::vector<trace::Trace>& traces,
                               const Profiler& p);

// Registers callback metrics for every zone path (existing and future)
// of `p` in `registry`, and arms the detach-freeze hook described above.
// `p` and `registry` must outlive the run; `registry` may outlive `p`.
void RegisterZoneMetrics(Profiler* p, metrics::Registry* registry);

}  // namespace repro::prof
