#include "prof/report.h"

#include <algorithm>
#include <fstream>

#include "metrics/counters.h"
#include "trace/chrome_trace.h"
#include "util/strings.h"

namespace repro::prof {

namespace {

uint64_t PickSelf(const ZoneStats& s, Metric metric) {
  switch (metric) {
    case Metric::kCpuNs:
      return s.cpu_ns;
    case Metric::kAllocs:
      return s.allocs;
    case Metric::kAllocBytes:
      return s.alloc_bytes;
    case Metric::kSimCpuNs:
      return s.sim_cpu_ns;
    case Metric::kSimDiskBytes:
      return s.sim_disk_bytes;
  }
  return 0;
}

void FoldNode(const Profiler& p, int32_t node, Metric metric,
              std::string* out) {
  if (node > 0) {
    const uint64_t self = PickSelf(p.SelfOf(node), metric);
    if (self > 0) {
      *out += p.PathOf(node, ';');
      *out += ' ';
      *out += std::to_string(self);
      *out += '\n';
    }
  }
  for (int32_t c : p.nodes()[static_cast<size_t>(node)].children) {
    FoldNode(p, c, metric, out);
  }
}

double PerCall(uint64_t total, uint64_t calls) {
  return calls == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(calls);
}

}  // namespace

std::string FoldedStacks(const Profiler& p, Metric metric) {
  std::string out;
  FoldNode(p, 0, metric, &out);
  return out;
}

bool WriteFoldedStacks(const std::string& path, const Profiler& p,
                       Metric metric) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) return false;
  f << FoldedStacks(p, metric);
  return static_cast<bool>(f.good());
}

std::string BudgetTable(const Profiler& p, size_t top_k) {
  auto rows = p.ByName();
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.cpu_ns != b.second.cpu_ns)
      return a.second.cpu_ns > b.second.cpu_ns;
    return a.first < b.first;  // deterministic tie-break
  });
  if (rows.size() > top_k) rows.resize(top_k);

  std::string out = StrFormat(
      "%-28s %12s %10s %10s %10s %10s %12s %12s\n", "zone", "calls", "cpu_ms",
      "us/call", "allocs", "alloc/call", "bytes/call", "sim_cpu_ms");
  for (const auto& [name, s] : rows) {
    out += StrFormat(
        "%-28s %12llu %10.2f %10.2f %10llu %10.2f %12.1f %12.2f\n",
        name.c_str(), static_cast<unsigned long long>(s.calls),
        static_cast<double>(s.cpu_ns) / 1e6,
        PerCall(s.cpu_ns, s.calls) / 1e3,
        static_cast<unsigned long long>(s.allocs), PerCall(s.allocs, s.calls),
        PerCall(s.alloc_bytes, s.calls),
        static_cast<double>(s.sim_cpu_ns) / 1e6);
  }
  return out;
}

std::string ZonesJson(const Profiler& p) {
  std::string out = "{\"zones\":{";
  bool first = true;
  for (const auto& [name, s] : p.ByName()) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "\"%s\":{\"calls\":%llu,\"cpu_ns\":%llu,\"allocs\":%llu,"
        "\"alloc_bytes\":%llu,\"sim_cpu_ns\":%llu,\"sim_disk_bytes\":%llu,"
        "\"allocs_per_call\":%.3f,\"bytes_per_call\":%.1f,"
        "\"cpu_us_per_call\":%.3f}",
        name.c_str(), static_cast<unsigned long long>(s.calls),
        static_cast<unsigned long long>(s.cpu_ns),
        static_cast<unsigned long long>(s.allocs),
        static_cast<unsigned long long>(s.alloc_bytes),
        static_cast<unsigned long long>(s.sim_cpu_ns),
        static_cast<unsigned long long>(s.sim_disk_bytes),
        PerCall(s.allocs, s.calls), PerCall(s.alloc_bytes, s.calls),
        PerCall(s.cpu_ns, s.calls) / 1e3);
  }
  out += "}}";
  return out;
}

std::string ZoneChromeEvents(const Profiler& p, int pid) {
  std::string out;
  bool first = true;
  // The ring is a circular buffer; emit oldest-first for stable output.
  const auto& ring = p.chrome_ring();
  if (ring.empty()) return out;
  const size_t n = ring.size();
  const size_t cap = p.options().chrome_ring_capacity;
  // When the ring wrapped, the oldest entry sits at ring_next_ — but that
  // index is private; reconstruct from dropped count instead: if nothing
  // was dropped the ring is in insertion order already, otherwise the
  // oldest is at (dropped % cap).
  const size_t start = (n < cap) ? 0 : p.chrome_dropped() % cap;
  for (size_t i = 0; i < n; ++i) {
    const Profiler::ChromeEvent& ev = ring[(start + i) % n];
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"prof\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":0,"
        "\"args\":{\"host_ns\":%llu,\"allocs\":%llu,\"bytes\":%llu}}",
        p.PathOf(ev.node, ';').c_str(),
        static_cast<double>(ev.sim_ns) / 1000.0,
        static_cast<double>(ev.host_ns) / 1000.0, pid,
        static_cast<unsigned long long>(ev.host_ns),
        static_cast<unsigned long long>(ev.allocs),
        static_cast<unsigned long long>(ev.bytes));
  }
  out += StrFormat(
      ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
      "\"args\":{\"name\":\"profiler (host cost)\"}}",
      pid);
  return out;
}

bool WriteChromeTraceWithZones(const std::string& path,
                               const std::vector<trace::Trace>& traces,
                               const Profiler& p) {
  std::string json = trace::ChromeTraceJson(traces);
  const std::string zones = ZoneChromeEvents(p);
  if (!zones.empty()) {
    // Splice the profiler track into the traceEvents array. ChromeTraceJson
    // always ends with "]}"; an empty array gets no leading comma.
    const bool array_empty = json.size() >= 3 && json[json.size() - 3] == '[';
    json.resize(json.size() - 2);
    if (!array_empty) json += ',';
    json += zones;
    json += "]}";
  }
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) return false;
  f << json;
  return static_cast<bool>(f.good());
}

void RegisterZoneMetrics(Profiler* p, metrics::Registry* registry) {
  p->SetNodeObserver([p, registry](int32_t node) {
    // '/' separator: comma-free and CSV/Prometheus-label safe.
    const metrics::Labels labels{{"zone", p->PathOf(node, '/')}};
    registry->RegisterCallback(
        "prof.zone.cpu_ns", labels, metrics::MetricKind::kCounter,
        [p, node] {
          return static_cast<double>(
              p->nodes()[static_cast<size_t>(node)].total.cpu_ns);
        });
    registry->RegisterCallback(
        "prof.zone.calls", labels, metrics::MetricKind::kCounter, [p, node] {
          return static_cast<double>(
              p->nodes()[static_cast<size_t>(node)].total.calls);
        });
    registry->RegisterCallback(
        "prof.zone.allocs", labels, metrics::MetricKind::kCounter,
        [p, node] {
          return static_cast<double>(
              p->nodes()[static_cast<size_t>(node)].total.allocs);
        });
    registry->RegisterCallback(
        "prof.zone.alloc_bytes", labels, metrics::MetricKind::kCounter,
        [p, node] {
          return static_cast<double>(
              p->nodes()[static_cast<size_t>(node)].total.alloc_bytes);
        });
  });
  // On detach, freeze every zone callback to its final value so a
  // registry that outlives the profiler never calls into freed memory.
  p->SetDetachHook([p, registry] {
    for (size_t i = 1; i < p->nodes().size(); ++i) {
      const metrics::Labels labels{
          {"zone", p->PathOf(static_cast<int32_t>(i), '/')}};
      const ZoneStats& s = p->nodes()[i].total;
      const double cpu = static_cast<double>(s.cpu_ns);
      const double calls = static_cast<double>(s.calls);
      const double allocs = static_cast<double>(s.allocs);
      const double bytes = static_cast<double>(s.alloc_bytes);
      registry->RegisterCallback("prof.zone.cpu_ns", labels,
                                 metrics::MetricKind::kCounter,
                                 [cpu] { return cpu; });
      registry->RegisterCallback("prof.zone.calls", labels,
                                 metrics::MetricKind::kCounter,
                                 [calls] { return calls; });
      registry->RegisterCallback("prof.zone.allocs", labels,
                                 metrics::MetricKind::kCounter,
                                 [allocs] { return allocs; });
      registry->RegisterCallback("prof.zone.alloc_bytes", labels,
                                 metrics::MetricKind::kCounter,
                                 [bytes] { return bytes; });
    }
  });
}

}  // namespace repro::prof
