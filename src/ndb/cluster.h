// NDB cluster: datanodes, management nodes, arbitration, failure handling.
//
// The cluster wires the datanodes to the simulated network, runs the
// heartbeat failure detector, global checkpoints, and the arbitrator
// protocol that resolves AZ partitions (§IV-A2): on suspicion a datanode
// asks the current arbitrator (a management node) to bless the set of
// nodes it can still reach; the first viable claim of an episode wins and
// every node outside the blessed view — or unable to reach the arbitrator
// — shuts itself down.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ndb/config.h"
#include "ndb/datanode.h"
#include "ndb/layout.h"
#include "ndb/schema.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace repro::ndb {

class NdbApiNode;

struct NdbClusterConfig {
  LayoutConfig layout;
  NdbNodeConfig node;
  CostModel cost;
  FeatureFlags flags;
  // AZ of each management node; the first one whose host is up acts as
  // arbitrator (M1 in Fig. 4).
  std::vector<AzId> mgmt_az = {0, 1, 2};
};

class NdbMgmtNode {
 public:
  NdbMgmtNode(int id, HostId host) : id_(id), host_(host) {}

  int id() const { return id_; }
  HostId host() const { return host_; }

  // Arbitration: returns true (grant) if the requester's reachable set is
  // the episode winner or the requester belongs to the winning view.
  bool HandleArbRequest(NodeId requester, const std::vector<bool>& reachable,
                        Nanos now);

  // Audit log of every arbitration decision, consumed by the chaos
  // harness's split-brain invariant: within one episode every grant must
  // go to a member of the episode's single blessed view.
  struct ArbDecision {
    Nanos time;
    NodeId requester;
    bool granted;
    bool new_episode;           // this decision blessed a fresh view
    std::vector<bool> view;     // the view in force after the decision
  };
  const std::vector<ArbDecision>& decision_log() const {
    return decision_log_;
  }

  static constexpr Nanos kEpisodeWindow = 1 * kSecond;

 private:
  int id_;
  HostId host_;
  std::vector<bool> granted_view_;
  Nanos last_grant_ = -1;
  std::vector<ArbDecision> decision_log_;
};

class NdbCluster {
 public:
  // `catalog` must outlive the cluster. Hosts for datanodes and mgmt
  // nodes are created inside `topology`.
  NdbCluster(Simulation& sim, Network& network, const Catalog* catalog,
             NdbClusterConfig config);
  ~NdbCluster();

  NdbCluster(const NdbCluster&) = delete;
  NdbCluster& operator=(const NdbCluster&) = delete;

  // Starts heartbeats, checkpointing and timeout sweeps.
  void StartProtocols();

  Simulation& sim() { return sim_; }
  // The deployment-wide tracer (owned by the simulation).
  trace::Tracer& tracer();
  Network& network() { return network_; }
  const Catalog& catalog() const { return *catalog_; }
  ClusterLayout& layout() { return layout_; }
  const NdbClusterConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }
  const NdbNodeConfig& node_config() const { return config_.node; }
  const FeatureFlags& flags() const { return config_.flags; }

  NdbDatanode& datanode(NodeId n) { return *datanodes_[n]; }
  int num_datanodes() const { return static_cast<int>(datanodes_.size()); }
  NdbMgmtNode& mgmt(int i) { return *mgmt_[i]; }
  int num_mgmt() const { return static_cast<int>(mgmt_.size()); }

  bool cluster_up() const { return cluster_up_; }

  TxnId NextTxnId() { return ++txn_counter_; }

  ApiNodeId RegisterApi(NdbApiNode* api);
  NdbApiNode* api(ApiNodeId id) { return apis_[id]; }
  // Nulls the slot (ids are append-only, never reused), so anything that
  // re-resolves a destroyed API node by id gets nullptr — the fence that
  // keeps late replies and op timers from touching freed memory.
  void UnregisterApi(ApiNodeId id) {
    if (id >= 0 && id < static_cast<ApiNodeId>(apis_.size())) {
      apis_[id] = nullptr;
    }
  }

  // ---- failure handling ----
  // Lowest-id management node on an up host (the acting arbitrator).
  int CurrentArbitratorIndex() const;
  // Declares a datanode dead: promotes backups (via layout aliveness),
  // aborts transactions touching it, shuts the cluster down if a whole
  // node group is gone.
  void DeclareNodeFailed(NodeId n);
  // Crash helpers used by tests/benchmarks.
  void CrashDatanode(NodeId n);
  void ShutdownCluster();

  // Node recovery: brings a failed datanode back through a timed state
  // machine (down -> replaying -> resyncing -> serving). Replay reads
  // the node's checkpoint image + durable redo log from its disk and
  // re-applies entries (cost proportional to bytes + entries since the
  // last LCP); resync copies only the delta from a live node-group peer
  // over the NIC; the node then completes a checkpoint of the adopted
  // image and rejoins. `done` fires once the node serves again (or the
  // recovery is abandoned — whole group lost, or re-crashed mid-way).
  void RestartDatanode(NodeId n, std::function<void()> done = nullptr);

  // One entry per RestartDatanode invocation that started recovering —
  // the recovery timeline consumed by chaos invariants, benchmarks and
  // the CI artifact. Timestamps are -1 until the phase completes.
  struct RecoveryStats {
    NodeId node = kNoNode;
    int attempts = 1;            // resync retries after source death
    Nanos started = 0;
    Nanos replay_done = -1;
    Nanos serving_at = -1;
    int64_t replay_entries = 0;
    int64_t replay_log_bytes = 0;
    int64_t replay_image_bytes = 0;
    int64_t resync_rows = 0;
    int64_t resync_bytes = 0;
    int64_t resync_deletes = 0;
    uint64_t replay_digest = 0;
    bool replay_deterministic = false;  // replay-twice digests agreed
    bool replay_covered = false;        // exactly the durable prefix
    // Streaming catch-up: partitions served before full rejoin, and the
    // committed reads the node absorbed while still resyncing.
    int streamed_parts = 0;
    int64_t catchup_reads = 0;
    bool aborted = false;
    std::string abort_reason;
    trace::SpanId trace_root = 0;
  };
  // Bounded ring (node_config().recovery_log_cap): long restart-storm
  // soaks evict the oldest entries instead of growing without bound.
  const std::deque<RecoveryStats>& recovery_log() const {
    return recovery_log_;
  }
  // Entries evicted from the ring since the cluster started.
  int64_t recoveries_dropped() const { return recoveries_dropped_; }

  // Global-checkpoint epoch (§II-B2). Commits become durable only once
  // every node's flushed redo log covers the epoch.
  int64_t gcp_epoch() const { return gcp_epoch_; }
  // Highest epoch the cluster has *closed*: every transaction whose
  // commit decision fell at or below it has finished its commit chains,
  // so the epoch boundary recorded in each journal is exact. Trails
  // gcp_epoch() while commits of older epochs are still in flight.
  int64_t closed_gcp_epoch() const { return closed_epoch_; }
  // The newest epoch whose log is on disk on every layout-alive node —
  // the cluster-wide durability boundary local checkpoints cut at.
  int64_t DurableGcpEpoch() const;

  // Simulates a whole-cluster outage and restart: every datanode
  // replays checkpoint + redo log up to the last globally durable
  // epoch. Transactions committed after it are LOST — NDB's documented
  // durability boundary — and reported instead of silently dropped.
  // Requires enable_durability.
  struct ClusterRecoveryReport {
    int64_t epoch = 0;              // the recovery cut
    int64_t dropped_commits = 0;    // distinct post-cut transactions
    std::vector<TxnId> dropped_txns;
    int64_t dropped_entries = 0;    // redo records dropped (all replicas)
    Nanos loss_window = 0;          // age of the oldest dropped record
    int64_t replayed_entries = 0;
    bool replay_deterministic = true;
  };
  ClusterRecoveryReport RecoverFromCheckpoint();

  // ---- statistics ----
  void RecordReplicaRead(PartitionId part, int replica_idx);
  // reads_per_replica()[p][i]: committed+locked reads served by the i-th
  // configured replica of partition p (0 = configured primary). Fig. 14.
  const std::vector<std::vector<int64_t>>& reads_per_replica() const {
    return replica_reads_;
  }
  void ResetStats();

  // Bulk-loads a committed row onto every replica, bypassing the
  // protocol. For experiment namespace bootstrap only.
  void BootstrapPut(TableId table, const Key& key, std::string value);

  // Aggregate thread-pool utilisation over [window_start, now], averaged
  // over alive datanodes. Order: LDM, TC, RECV, SEND, REP, IO, MAIN.
  struct ThreadUtilization {
    double ldm, tc, recv, send, rep, io, main;
    double average() const {
      return (ldm + tc + recv + send + rep + io + main) / 7.0;
    }
  };
  ThreadUtilization AverageThreadUtilization(Nanos window_start) const;

 private:
  void HeartbeatTick(NodeId n);
  void RequestArbitration(NodeId requester);

  // ---- node-recovery state machine steps ----
  // True while the recovery started with `gen` on node n is still the
  // one in flight (no re-crash, no cluster shutdown).
  bool RecoveryStillValid(NodeId n, uint64_t gen) const;
  void AbandonRecovery(NodeId n, size_t slot, const std::string& reason,
                       const std::function<void()>& done);
  void RecoveryResync(NodeId n, size_t slot, uint64_t gen,
                      std::function<void()> done);
  // Streaming resync: copies one partition's delta, fences it quiescent,
  // marks it catch-up-ready (the node serves reads for it immediately),
  // then recurses to the next partition.
  void StreamNextPartition(NodeId n, size_t slot, uint64_t gen, NodeId source,
                           PartitionId next, std::function<void()> done);
  void FinishRecovery(NodeId n, size_t slot, uint64_t gen, NodeId source,
                      std::function<void()> done);
  // Rows the restarted node must copy from (or drop relative to) the
  // live peer to converge; applies the delta when `apply` is true.
  // `part` >= 0 restricts the delta to rows hashing to that partition.
  struct ResyncDelta {
    int64_t rows = 0;
    int64_t bytes = 0;
    int64_t deletes = 0;
  };
  ResyncDelta ComputeResync(NodeId n, NodeId source, bool apply,
                            PartitionId part = -1);
  // Ring slot -> entry, or nullptr if the entry was evicted by the cap.
  RecoveryStats* RecoverySlot(size_t slot);
  // Closes every epoch <= gcp_epoch_ that no alive node still has an
  // in-flight commit for (transaction-atomic epochs: an epoch's boundary
  // is only recorded once all its commits have finished their chains).
  void TryCloseEpochs();

  Simulation& sim_;
  Network& network_;
  const Catalog* catalog_;
  NdbClusterConfig config_;
  ClusterLayout layout_;

  std::vector<std::unique_ptr<NdbDatanode>> datanodes_;
  std::vector<std::unique_ptr<NdbMgmtNode>> mgmt_;
  std::vector<NdbApiNode*> apis_;

  // last_heard_[i][j]: when datanode i last heard from datanode j.
  std::vector<std::vector<Nanos>> last_heard_;
  std::vector<bool> arbitration_in_flight_;

  std::vector<Simulation::PeriodicHandle> timers_;
  std::vector<std::vector<int64_t>> replica_reads_;
  std::deque<RecoveryStats> recovery_log_;
  size_t recovery_log_base_ = 0;    // absolute slot of recovery_log_[0]
  int64_t recoveries_dropped_ = 0;  // evicted by recovery_log_cap
  uint64_t txn_counter_ = 0;
  int64_t gcp_epoch_ = 0;
  int64_t closed_epoch_ = 0;
  bool close_retry_pending_ = false;
  bool cluster_up_ = true;
  bool protocols_started_ = false;
};

}  // namespace repro::ndb
