#include "ndb/redo_journal.h"
#include "prof/profiler.h"

#include <algorithm>
#include <set>

namespace repro::ndb {

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ull;
// Separates fields inside the digest stream so ("ab","c") and ("a","bc")
// cannot collide, and marks deleted rows distinctly from empty values.
constexpr unsigned char kFieldSep = 0x1f;
}  // namespace

void ImageDigest::Mix(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash_ ^= p[i];
    hash_ *= kFnvPrime;
  }
}

void ImageDigest::AddRow(TableId table, const Key& key,
                         const std::string& value) {
  Mix(&table, sizeof(table));
  Mix(&kFieldSep, 1);
  Mix(key.data(), key.size());
  Mix(&kFieldSep, 1);
  Mix(value.data(), value.size());
  Mix(&kFieldSep, 1);
}

RedoJournal::RedoJournal(int num_tables, Config config)
    : config_(config), base_(num_tables) {}

void RedoJournal::AppendToSegment(Record record) {
  if (segments_.empty() || segments_.back().bytes >= config_.segment_bytes) {
    Segment seg;
    seg.first_seqno = record.seqno;
    seg.last_seqno = record.seqno - 1;
    segments_.push_back(std::move(seg));
  }
  Segment& seg = segments_.back();
  seg.last_seqno = record.seqno;
  seg.bytes += record.bytes;
  if (!record.folded) seg.unfolded += 1;
  seg.records.push_back(std::move(record));
}

int64_t RedoJournal::Append(int64_t epoch, TxnId txn, TableId table,
                            const Key& key, PartitionId part, bool deleted,
                            std::string value, Nanos now) {
  Record r;
  r.seqno = ++last_seqno_;
  r.epoch = epoch;
  r.txn = txn;
  r.table = table;
  r.key = key;
  r.part = part;
  r.deleted = deleted;
  r.value = std::move(value);
  r.bytes = static_cast<int64_t>(key.size()) +
            static_cast<int64_t>(r.value.size()) +
            config_.record_overhead_bytes;
  r.appended_at = now;
  appended_bytes_ += r.bytes;
  lag_bytes_ += r.bytes;
  lag_entries_ += 1;
  AppendToSegment(std::move(r));
  return last_seqno_;
}

void RedoJournal::BootstrapRow(TableId table, const Key& key,
                               const std::string& value) {
  auto& rows = base_[table];
  auto it = rows.find(key);
  const int64_t row_bytes = static_cast<int64_t>(key.size()) +
                            static_cast<int64_t>(value.size()) +
                            config_.record_overhead_bytes;
  if (it == rows.end()) {
    rows.emplace(key, value);
    base_rows_ += 1;
    base_bytes_ += row_bytes;
  } else {
    base_bytes_ += static_cast<int64_t>(value.size()) -
                   static_cast<int64_t>(it->second.size());
    it->second = value;
  }
}

RedoJournal::FlushBatch RedoJournal::PrepareFlush() {
  PROF_ZONE("ndb.redo.prepare_flush");
  FlushBatch batch;
  if (last_seqno_ <= flush_requested_seqno_) return batch;
  batch.upto_seqno = last_seqno_;
  for (const Segment& seg : segments_) {
    if (seg.last_seqno <= flush_requested_seqno_) continue;
    for (const Record& r : seg.records) {
      if (r.seqno > flush_requested_seqno_) batch.record_bytes += r.bytes;
    }
  }
  batch.disk_bytes = batch.record_bytes + config_.flush_overhead_bytes;
  flush_requested_seqno_ = batch.upto_seqno;
  return batch;
}

void RedoJournal::MarkFlushed(const FlushBatch& batch) {
  PROF_ZONE("ndb.redo.mark_flushed");
  if (batch.upto_seqno <= durable_seqno_) return;
  durable_seqno_ = batch.upto_seqno;
  durable_bytes_ += batch.record_bytes;
}

void RedoJournal::DropUnflushed() {
  ++generation_;
  flush_requested_seqno_ = durable_seqno_;
  // Folded records are always <= durable_seqno_ (an LCP only folds the
  // flushed prefix), so the dropped tail is all unfolded.
  while (!segments_.empty() &&
         segments_.back().first_seqno > durable_seqno_) {
    appended_bytes_ -= segments_.back().bytes;
    segments_.pop_back();
  }
  if (!segments_.empty() && segments_.back().last_seqno > durable_seqno_) {
    Segment& seg = segments_.back();
    while (!seg.records.empty() &&
           seg.records.back().seqno > durable_seqno_) {
      seg.bytes -= seg.records.back().bytes;
      appended_bytes_ -= seg.records.back().bytes;
      if (!seg.records.back().folded) seg.unfolded -= 1;
      seg.records.pop_back();
    }
    seg.last_seqno = durable_seqno_;
  }
  RecomputeLag();
}

void RedoJournal::CloseEpoch(int64_t epoch) {
  if (!epoch_bounds_.empty() && epoch_bounds_.back().first >= epoch) return;
  epoch_bounds_.emplace_back(epoch, last_seqno_);
}

int64_t RedoJournal::durable_epoch() const {
  int64_t epoch = base_epoch_;
  for (auto it = epoch_bounds_.rbegin(); it != epoch_bounds_.rend(); ++it) {
    if (it->second <= durable_seqno_) {
      epoch = std::max(epoch, it->first);
      break;
    }
  }
  return epoch;
}

int64_t RedoJournal::CheckpointCutSeqno(
    int64_t cluster_durable_epoch) const {
  int64_t cut = base_seqno_;
  for (const auto& [epoch, boundary] : epoch_bounds_) {
    if (epoch > cluster_durable_epoch) break;
    cut = std::max(cut, boundary);
  }
  // Never fold beyond the locally flushed prefix: the image must not
  // contain rows the log could fail to attest after a crash.
  return std::min(cut, durable_seqno_);
}

int64_t RedoJournal::EpochAtCut(int64_t cut_seqno) const {
  int64_t epoch = base_epoch_;
  for (const auto& [e, boundary] : epoch_bounds_) {
    if (boundary > cut_seqno) break;
    epoch = std::max(epoch, e);
  }
  return epoch;
}

int64_t RedoJournal::FragmentCheckpointBytes(PartitionId part,
                                             int num_partitions,
                                             int64_t cut_seqno) const {
  // The fragment writes its share of the base image plus the records it
  // is about to fold. Shares sum to the whole image across fragments.
  int64_t bytes = base_bytes_ / num_partitions +
                  (part < base_bytes_ % num_partitions ? 1 : 0);
  const int64_t cut_epoch = EpochAtCut(cut_seqno);
  for (const Segment& seg : segments_) {
    if (seg.first_seqno > cut_seqno) break;
    for (const Record& r : seg.records) {
      if (r.seqno > cut_seqno) break;
      if (!r.folded && r.part == part && r.epoch <= cut_epoch) {
        bytes += r.bytes;
      }
    }
  }
  return bytes;
}

void RedoJournal::CompleteFragmentCheckpoint(PartitionId part,
                                             int64_t cut_seqno) {
  // Only records of closed epochs the cut attests may fold: a record of
  // a still-open epoch can sit below the cut seqno (deferred epoch close
  // interleaves), and folding it would bake a commit into the base image
  // that a cluster recovery at the cut epoch must drop.
  const int64_t cut_epoch = EpochAtCut(cut_seqno);
  for (Segment& seg : segments_) {
    if (seg.first_seqno > cut_seqno) break;
    for (Record& r : seg.records) {
      if (r.seqno > cut_seqno) break;
      if (r.folded || r.part != part || r.epoch > cut_epoch) continue;
      FoldIntoBase(r);
      r.folded = true;
      seg.unfolded -= 1;
    }
  }
  max_folded_epoch_ = std::max(max_folded_epoch_, cut_epoch);
  // A partially completed LCP round still truncates what it covered.
  TruncateCoveredSegments();
  RecomputeLag();
}

void RedoJournal::FinishCheckpointRound(int64_t cut_seqno, Nanos now) {
  base_seqno_ = std::max(base_seqno_, cut_seqno);
  base_epoch_ = std::max(base_epoch_, EpochAtCut(cut_seqno));
  last_checkpoint_at_ = now;
  // Epoch boundaries at or below the base epoch can never cut again.
  while (epoch_bounds_.size() > 1 &&
         epoch_bounds_.front().first <= base_epoch_ &&
         epoch_bounds_.front().second <= base_seqno_) {
    epoch_bounds_.erase(epoch_bounds_.begin());
  }
  TruncateCoveredSegments();
  RecomputeLag();
}

int64_t RedoJournal::CheckpointBytes(int64_t cut_seqno) const {
  int64_t bytes = base_bytes_;
  const int64_t cut_epoch = EpochAtCut(cut_seqno);
  for (const Segment& seg : segments_) {
    if (seg.first_seqno > cut_seqno) break;
    for (const Record& r : seg.records) {
      if (r.seqno > cut_seqno) break;
      if (!r.folded && r.epoch <= cut_epoch) bytes += r.bytes;
    }
  }
  return bytes;
}

void RedoJournal::FoldIntoBase(const Record& record) {
  auto& rows = base_[record.table];
  auto it = rows.find(record.key);
  if (record.deleted) {
    if (it != rows.end()) {
      base_bytes_ -= static_cast<int64_t>(record.key.size()) +
                     static_cast<int64_t>(it->second.size()) +
                     config_.record_overhead_bytes;
      base_rows_ -= 1;
      rows.erase(it);
    }
    return;
  }
  if (it == rows.end()) {
    rows.emplace(record.key, record.value);
    base_rows_ += 1;
    base_bytes_ += record.bytes;
  } else {
    base_bytes_ += static_cast<int64_t>(record.value.size()) -
                   static_cast<int64_t>(it->second.size());
    it->second = record.value;
  }
}

void RedoJournal::TruncateCoveredSegments() {
  // A segment whose every record is folded is fully attested by the base
  // image (folding only touches the flushed prefix) — drop it. A segment
  // with any unfolded record stays whole; re-visiting its folded prefix
  // is skipped everywhere via the folded bit.
  while (!segments_.empty() && segments_.front().unfolded == 0) {
    segments_.pop_front();
  }
}

void RedoJournal::CompleteCheckpoint(int64_t cut_seqno, Nanos now) {
  if (cut_seqno <= base_seqno_) return;
  const int64_t cut_epoch = EpochAtCut(cut_seqno);
  for (Segment& seg : segments_) {
    if (seg.first_seqno > cut_seqno) break;
    for (Record& r : seg.records) {
      if (r.seqno > cut_seqno) break;
      if (r.folded || r.epoch > cut_epoch) continue;
      FoldIntoBase(r);
      r.folded = true;
      seg.unfolded -= 1;
    }
  }
  max_folded_epoch_ = std::max(max_folded_epoch_, cut_epoch);
  FinishCheckpointRound(cut_seqno, now);
}

void RedoJournal::InstallImageBegin(int64_t epoch, Nanos now) {
  ++generation_;
  for (auto& rows : base_) rows.clear();
  base_rows_ = 0;
  base_bytes_ = 0;
  segments_.clear();
  epoch_bounds_.clear();
  base_seqno_ = last_seqno_;
  durable_seqno_ = last_seqno_;
  flush_requested_seqno_ = last_seqno_;
  durable_bytes_ = appended_bytes_;
  base_epoch_ = epoch;
  max_folded_epoch_ = epoch;
  last_checkpoint_at_ = now;
  lag_bytes_ = 0;
  lag_entries_ = 0;
}

void RedoJournal::InstallImageRow(TableId table, const Key& key,
                                  const std::string& value) {
  BootstrapRow(table, key, value);
}

void RedoJournal::InstallImageDelete(TableId table, const Key& key) {
  auto& rows = base_[table];
  auto it = rows.find(key);
  if (it == rows.end()) return;
  base_bytes_ -= static_cast<int64_t>(key.size()) +
                 static_cast<int64_t>(it->second.size()) +
                 config_.record_overhead_bytes;
  base_rows_ -= 1;
  rows.erase(it);
}

void RedoJournal::AdoptRecord(int64_t epoch, TxnId txn, TableId table,
                              const Key& key, PartitionId part, bool deleted,
                              std::string value, Nanos appended_at) {
  Record r;
  r.seqno = ++last_seqno_;
  r.epoch = epoch;
  r.txn = txn;
  r.table = table;
  r.key = key;
  r.part = part;
  r.deleted = deleted;
  r.value = std::move(value);
  r.bytes = static_cast<int64_t>(key.size()) +
            static_cast<int64_t>(r.value.size()) +
            config_.record_overhead_bytes;
  r.appended_at = appended_at;
  appended_bytes_ += r.bytes;
  lag_bytes_ += r.bytes;
  lag_entries_ += 1;
  AppendToSegment(std::move(r));
  // Adopted records count as flushed: the rejoin sequence charges their
  // bytes to the log disk in one bulk write before the node serves.
  durable_seqno_ = last_seqno_;
  flush_requested_seqno_ = last_seqno_;
  durable_bytes_ = appended_bytes_;
}

void RedoJournal::RaiseFoldedEpoch(int64_t epoch) {
  max_folded_epoch_ = std::max(max_folded_epoch_, epoch);
}

RedoJournal::ReplayPlan RedoJournal::PlanReplay(int64_t max_epoch) const {
  ReplayPlan plan;
  plan.image_bytes = base_bytes_;
  plan.image_rows = base_rows_;
  for (const Segment& seg : segments_) {
    for (const Record& r : seg.records) {
      if (r.folded || r.seqno > durable_seqno_) continue;
      if (r.epoch > max_epoch) continue;
      plan.entries += 1;
      plan.log_bytes += r.bytes;
    }
  }
  return plan;
}

int64_t RedoJournal::Replay(
    int64_t max_epoch,
    const std::function<void(TableId, const Key&, const std::string&)>& put,
    const std::function<void(TableId, const Key&)>& del) const {
  for (TableId t = 0; t < static_cast<TableId>(base_.size()); ++t) {
    for (const auto& [key, value] : base_[t]) put(t, key, value);
  }
  int64_t applied = 0;
  for (const Segment& seg : segments_) {
    for (const Record& r : seg.records) {
      if (r.folded || r.seqno > durable_seqno_) continue;
      if (r.epoch > max_epoch) continue;
      if (r.deleted) {
        del(r.table, r.key);
      } else {
        put(r.table, r.key, r.value);
      }
      ++applied;
    }
  }
  return applied;
}

uint64_t RedoJournal::ReplayDigest(int64_t max_epoch) const {
  std::vector<std::map<Key, std::string>> image(base_.size());
  Replay(
      max_epoch,
      [&image](TableId t, const Key& k, const std::string& v) {
        image[t][k] = v;
      },
      [&image](TableId t, const Key& k) { image[t].erase(k); });
  ImageDigest digest;
  for (TableId t = 0; t < static_cast<TableId>(image.size()); ++t) {
    for (const auto& [key, value] : image[t]) digest.AddRow(t, key, value);
  }
  return digest.value();
}

RedoJournal::LossReport RedoJournal::LossBeyond(int64_t epoch) const {
  LossReport report;
  std::set<TxnId> txns;
  for (const Segment& seg : segments_) {
    for (const Record& r : seg.records) {
      if (r.folded) continue;
      if (r.epoch <= epoch && r.seqno <= durable_seqno_) continue;
      report.entries += 1;
      if (r.txn != 0) txns.insert(r.txn);
      if (report.oldest_append < 0 || r.appended_at < report.oldest_append) {
        report.oldest_append = r.appended_at;
      }
    }
  }
  report.txns.assign(txns.begin(), txns.end());
  return report;
}

int64_t RedoJournal::backlog_bytes() const {
  return appended_bytes_ - durable_bytes_;
}

int64_t RedoJournal::live_records() const {
  int64_t n = 0;
  for (const Segment& seg : segments_) {
    n += static_cast<int64_t>(seg.records.size());
  }
  return n;
}

void RedoJournal::RecomputeLag() {
  lag_bytes_ = 0;
  lag_entries_ = 0;
  for (const Segment& seg : segments_) {
    for (const Record& r : seg.records) {
      if (r.folded) continue;
      lag_bytes_ += r.bytes;
      lag_entries_ += 1;
    }
  }
}

}  // namespace repro::ndb
