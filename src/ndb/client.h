// NDB API node: the client library the metadata servers link against.
//
// An API node lives on its caller's host (a HopsFS namenode) and owns the
// AZ-aware transaction-coordinator selection policy of §IV-A5: when a
// transaction starts with a partition-key hint, the TC is chosen from the
// nodes holding that partition (distribution-aware transactions), ordered
// by the AZ proximity score — four cases depending on the table options.
// Operations that receive no reply within the op timeout are failed with
// kTimedOut, which is how coordinator failure surfaces to the file system
// (whose retry loop then picks a surviving TC).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndb/cluster.h"
#include "ndb/datanode.h"
#include "ndb/types.h"

namespace repro::ndb {

class NdbApiNode {
 public:
  using ReadCb =
      std::function<void(Code, std::optional<std::string>)>;
  using WriteCb = std::function<void(Code)>;
  using ScanCb = std::function<void(
      Code, std::vector<std::pair<Key, std::string>>)>;

  // `location_domain_id` is the caller's AZ (§IV-B); kNoAz disables
  // AZ-local preferences for this client.
  NdbApiNode(NdbCluster& cluster, HostId host, AzId location_domain_id);

  ApiNodeId id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }

  // Starts a transaction. With a hint, the TC is picked per the four
  // cases of §IV-A5; without one, by proximity over all datanodes
  // (case 4). Returns 0 if no datanode is reachable.
  TxnId Begin(TableId hint_table, const Key& hint_key);
  TxnId BeginNoHint();

  void Read(TxnId txn, TableId table, Key key, LockMode mode, ReadCb cb);
  void Insert(TxnId txn, TableId table, Key key, std::string value,
              WriteCb cb);
  void Update(TxnId txn, TableId table, Key key, std::string value,
              WriteCb cb);
  // Upsert without existence constraints.
  void Write(TxnId txn, TableId table, Key key, std::string value,
             WriteCb cb);
  void Delete(TxnId txn, TableId table, Key key, WriteCb cb);
  void ScanPrefix(TxnId txn, TableId table, Key prefix, ScanCb cb);

  void Commit(TxnId txn, WriteCb cb);
  void Abort(TxnId txn);

  // Wire-level reply entry point (called by datanodes via the network).
  void OnOpReply(OpReply reply);

  void set_op_timeout(Nanos t) { op_timeout_ = t; }
  int64_t timeouts() const { return timeouts_; }

 private:
  struct TxnState {
    NodeId tc = kNoNode;
    bool broken = false;   // a timeout poisoned this txn
    int inflight = 0;
  };
  struct PendingOp {
    TxnId txn = 0;
    ReadCb read_cb;
    WriteCb write_cb;
    ScanCb scan_cb;
  };

  NodeId PickTc(const TableDef* td, TableId table, const Key* hint_key);
  TxnState* FindTxn(TxnId txn);
  uint64_t RegisterOp(TxnId txn, PendingOp op);
  void SendToTc(TxnId txn, NodeId tc, int64_t bytes,
                std::function<void(NdbDatanode&)> fn);
  void FailOp(uint64_t op_id, Code code);
  void SendKeyOp(TxnId txn, KeyOpReq req, PendingOp op);

  NdbCluster& cluster_;
  ApiNodeId id_;
  HostId host_;
  AzId az_;
  Nanos op_timeout_ = 1500 * kMillisecond;

  uint64_t next_op_id_ = 1;
  uint64_t rr_ = 0;
  int64_t timeouts_ = 0;
  std::unordered_map<TxnId, TxnState> txns_;
  std::unordered_map<uint64_t, PendingOp> pending_;
};

}  // namespace repro::ndb
