// NDB API node: the client library the metadata servers link against.
//
// An API node lives on its caller's host (a HopsFS namenode) and owns the
// AZ-aware transaction-coordinator selection policy of §IV-A5: when a
// transaction starts with a partition-key hint, the TC is chosen from the
// nodes holding that partition (distribution-aware transactions), ordered
// by the AZ proximity score — four cases depending on the table options.
// Operations that receive no reply within the op timeout are failed with
// kTimedOut, which is how coordinator failure surfaces to the file system
// (whose retry loop then picks a surviving TC).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/counters.h"
#include "ndb/cluster.h"
#include "ndb/datanode.h"
#include "ndb/types.h"
#include "sim/callback.h"
#include "util/flat_map.h"

namespace repro::ndb {

class NdbApiNode {
 public:
  using ReadCb = SmallCall<void(Code, std::optional<std::string>)>;
  using WriteCb = SmallCall<void(Code)>;
  using ScanCb =
      SmallCall<void(Code, std::vector<std::pair<Key, std::string>>)>;

  // `location_domain_id` is the caller's AZ (§IV-B); kNoAz disables
  // AZ-local preferences for this client.
  NdbApiNode(NdbCluster& cluster, HostId host, AzId location_domain_id);
  // Unregisters from the cluster: timers and in-flight replies that
  // resolve this node by id after destruction find a null slot instead
  // of a dangling pointer.
  ~NdbApiNode();
  NdbApiNode(const NdbApiNode&) = delete;
  NdbApiNode& operator=(const NdbApiNode&) = delete;

  ApiNodeId id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }

  // Starts a transaction. With a hint, the TC is picked per the four
  // cases of §IV-A5; without one, by proximity over all datanodes
  // (case 4). Returns 0 if no datanode is reachable. The hint is only
  // hashed, never stored, so a borrowed view suffices.
  TxnId Begin(TableId hint_table, std::string_view hint_key);
  TxnId BeginNoHint();

  void Read(TxnId txn, TableId table, Key key, LockMode mode, ReadCb cb);
  void Insert(TxnId txn, TableId table, Key key, std::string value,
              WriteCb cb);
  void Update(TxnId txn, TableId table, Key key, std::string value,
              WriteCb cb);
  // Upsert without existence constraints.
  void Write(TxnId txn, TableId table, Key key, std::string value,
             WriteCb cb);
  void Delete(TxnId txn, TableId table, Key key, WriteCb cb);
  void ScanPrefix(TxnId txn, TableId table, Key prefix, ScanCb cb);

  void Commit(TxnId txn, WriteCb cb);
  void Abort(TxnId txn);

  // Wire-level reply entry point (called by datanodes via the network).
  void OnOpReply(OpReply reply);

  void set_op_timeout(Nanos t) { op_timeout_ = t; }
  int64_t timeouts() const { return timeouts_; }

  // Deadline propagation: every op of this transaction carries the
  // deadline on the wire, the per-op timeout is clamped to the remaining
  // budget, and expired ops fail fast with kDeadlineExceeded before any
  // message is sent. 0 clears the deadline.
  void SetTxnDeadline(TxnId txn, Nanos deadline);

  // Trace parent for this transaction's operation spans (the caller's
  // per-attempt span; 0 = not sampled).
  void SetTxnTrace(TxnId txn, trace::SpanId span);

  // Hedged committed reads ("The Tail at Scale"): when a committed read
  // is still unanswered after `delay`, resend it (same op_id) to a backup
  // replica of the partition; first reply wins, the loser's reply is
  // dropped by the pending-op dedup. 0 disables hedging.
  void set_hedge_read_delay(Nanos delay) { hedge_read_delay_ = delay; }

  // Optional resilience counters (null = no accounting).
  void set_counters(metrics::Counter* hedges_sent,
                    metrics::Counter* hedge_wins,
                    metrics::Counter* deadline_exceeded) {
    hedges_sent_ = hedges_sent;
    hedge_wins_ = hedge_wins;
    deadline_exceeded_ = deadline_exceeded;
  }

 private:
  struct TxnState {
    NodeId tc = kNoNode;
    bool broken = false;   // a timeout poisoned this txn
    int inflight = 0;
    Nanos deadline = 0;    // absolute; 0 = none
    trace::SpanId span = 0;  // parent span for op spans (0 = unsampled)
  };
  struct PendingOp {
    TxnId txn = 0;
    ReadCb read_cb;
    WriteCb write_cb;
    ScanCb scan_cb;
    // Commit ops drop the transaction state when answered (success or
    // failure) — a flag instead of a wrapping closure, which would spill
    // the callback to the heap on the hot path.
    bool erase_txn = false;
    NodeId hedge_tc = kNoNode;  // where the hedge went (kNoNode = none)
    trace::SpanId span = 0;     // this op's span, closed at reply/failure
    trace::SpanId hedge_span = 0;  // hedge resend span (kRetry)
  };

  NodeId PickTc(const TableDef* td, TableId table, std::string_view hint_key);
  TxnState* FindTxn(TxnId txn);
  uint64_t RegisterOp(TxnId txn, PendingOp op);
  void OnOpTimeout(uint64_t op_id);
  void FailOp(uint64_t op_id, Code code);
  void SendKeyOp(TxnId txn, KeyOpReq req, PendingOp op);

  void MaybeHedgeRead(TxnId txn, uint64_t op_id, const KeyOpReq& req);
  void HedgeReadNow(TxnId txn, uint64_t op_id, KeyOpReq req);

  // Ships `fn(NdbDatanode&)` to the TC as one network delivery closure.
  // A template (like Network::Send) so the payload rides in the event
  // directly: one event-sized allocation when it is large, none when it
  // fits inline — never an extra type-erasure hop on top. The delivery
  // resolves nothing through `this` (the API node may be destroyed while
  // the message is in flight); datanode references stay valid for the
  // cluster's lifetime.
  template <typename F>
  void SendToTc(TxnId txn, NodeId tc, int64_t bytes, F fn,
                trace::SpanId parent = 0) {
    (void)txn;
    NdbDatanode& node = cluster_.datanode(tc);
    const AzId dst_az = cluster_.layout().az_of(tc);
    const trace::SpanId hop = cluster_.sim().tracer().StartSpan(
        parent, "net.api_tc", trace::Layer::kNdb, trace::NetCause(az_, dst_az),
        host_, az_, dst_az);
    NdbCluster* cluster = &cluster_;
    cluster_.network().Send(
        host_, node.host(), bytes,
        [cluster, &node, hop, fn = std::move(fn)]() mutable {
          cluster->sim().tracer().EndSpan(hop);
          node.ReceiveMsg([&node, fn = std::move(fn)]() mutable { fn(node); });
        });
  }

  NdbCluster& cluster_;
  ApiNodeId id_;
  HostId host_;
  AzId az_;
  Nanos op_timeout_ = 1500 * kMillisecond;
  Nanos hedge_read_delay_ = 0;  // 0 = hedging off
  metrics::Counter* hedges_sent_ = nullptr;
  metrics::Counter* hedge_wins_ = nullptr;
  metrics::Counter* deadline_exceeded_ = nullptr;

  uint64_t next_op_id_ = 1;
  uint64_t rr_ = 0;
  int64_t timeouts_ = 0;
  // Both keyed by monotonically increasing non-zero ids — safe for the
  // flat map's 0 / ~0 sentinels. Never iterated.
  util::FlatMap64<TxnState> txns_;
  util::FlatMap64<PendingOp> pending_;
};

}  // namespace repro::ndb
