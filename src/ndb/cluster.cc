#include "ndb/cluster.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <set>

#include "ndb/client.h"
#include "prof/profiler.h"
#include "util/logging.h"

namespace repro::ndb {

namespace {
constexpr const char* kLog = "ndb.cluster";
constexpr int64_t kHeartbeatBytes = 48;
constexpr int64_t kArbBytes = 96;
// Per-node epoch-close bookkeeping on the IO thread. Epoch durability
// itself comes from the flushed redo log covering the epoch, not from a
// marker write.
constexpr Nanos kGcpCloseCpu = 5 * kMicrosecond;
}  // namespace

bool NdbMgmtNode::HandleArbRequest(NodeId requester,
                                   const std::vector<bool>& reachable,
                                   Nanos now) {
  if (last_grant_ < 0 || now - last_grant_ > kEpisodeWindow) {
    // New episode: the first claimant's view wins.
    granted_view_ = reachable;
    last_grant_ = now;
    decision_log_.push_back(
        ArbDecision{now, requester, true, true, granted_view_});
    return true;
  }
  const bool in_view = requester >= 0 &&
                       requester < static_cast<NodeId>(granted_view_.size()) &&
                       granted_view_[requester];
  if (in_view) last_grant_ = now;
  decision_log_.push_back(
      ArbDecision{now, requester, in_view, false, granted_view_});
  return in_view;
}

NdbCluster::NdbCluster(Simulation& sim, Network& network,
                       const Catalog* catalog, NdbClusterConfig config)
    : sim_(sim), network_(network), catalog_(catalog),
      config_(std::move(config)), layout_(config_.layout, catalog) {
  auto& topo = network_.topology();
  const int n = config_.layout.num_datanodes;
  datanodes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    const HostId host =
        topo.AddHost(config_.layout.node_az[i], StrFormat("ndb-dn-%d", i));
    datanodes_.push_back(std::make_unique<NdbDatanode>(*this, i, host));
  }
  for (size_t m = 0; m < config_.mgmt_az.size(); ++m) {
    const HostId host = topo.AddHost(config_.mgmt_az[m],
                                     StrFormat("ndb-mgmt-%zu", m));
    mgmt_.push_back(std::make_unique<NdbMgmtNode>(static_cast<int>(m), host));
  }
  last_heard_.assign(n, std::vector<Nanos>(n, 0));
  arbitration_in_flight_.assign(n, false);
  replica_reads_.assign(layout_.num_partitions(),
                        std::vector<int64_t>(n, 0));
}

NdbCluster::~NdbCluster() {
  for (auto& t : timers_) t.Cancel();
}

trace::Tracer& NdbCluster::tracer() { return sim_.tracer(); }

ApiNodeId NdbCluster::RegisterApi(NdbApiNode* api) {
  apis_.push_back(api);
  return static_cast<ApiNodeId>(apis_.size()) - 1;
}

void NdbCluster::StartProtocols() {
  assert(!protocols_started_);
  protocols_started_ = true;
  const auto& nc = config_.node;
  const Nanos start = sim_.now();
  for (auto& row : last_heard_) row.assign(row.size(), start);

  for (NodeId i = 0; i < num_datanodes(); ++i) {
    timers_.push_back(
        sim_.Every(nc.heartbeat_interval, [this, i] { HeartbeatTick(i); }));
    timers_.push_back(sim_.Every(nc.redo_flush_interval, [this, i] {
      datanodes_[i]->FlushRedo();
    }));
    timers_.push_back(sim_.Every(500 * kMillisecond, [this, i] {
      // Catch-up backups sweep too: they hold pending slots for live chain
      // traffic, and an orphaned slot there (Complete/Abort lost to a
      // partition, coordinator long gone) would otherwise block the row
      // until the node fully revives.
      if (datanodes_[i]->alive() || datanodes_[i]->catchup_accepting()) {
        datanodes_[i]->SweepInactiveTxns();
      }
    }));
    // Local checkpoints: fold the durable log prefix into the base image
    // and truncate the journal (bounds its memory; sets replay cost).
    if (nc.enable_durability) {
      timers_.push_back(sim_.Every(nc.lcp_interval, [this, i] {
        datanodes_[i]->StartLocalCheckpoint(DurableGcpEpoch());
      }));
    }
  }
  // Global checkpoint: advance the epoch on every node, then close older
  // epochs once their commits have finished (transaction-atomic epochs:
  // a transaction's commit epoch is fixed at its commit decision, so the
  // boundary of epoch E may only be recorded after every transaction
  // with commit epoch <= E has finished its commit chains — otherwise a
  // straggling chain hop would straddle the boundary). An epoch becomes
  // durable on a node once the flushed redo log covers its boundary;
  // cluster-wide durability (DurableGcpEpoch) is the minimum over nodes.
  timers_.push_back(sim_.Every(nc.gcp_interval, [this] {
    if (!cluster_up_) return;
    ++gcp_epoch_;
    for (auto& dn : datanodes_) {
      if (dn->alive()) dn->set_gcp_epoch(gcp_epoch_);
    }
    TryCloseEpochs();
  }));
}

void NdbCluster::TryCloseEpochs() {
  PROF_ZONE("ndb.gcp.close_epochs");
  if (!cluster_up_) return;
  while (closed_epoch_ < gcp_epoch_) {
    const int64_t e = closed_epoch_ + 1;
    bool busy = false;
    for (auto& dn : datanodes_) {
      if (dn->alive() && dn->HasCommittingTxnAtOrBelow(e)) {
        busy = true;
        break;
      }
    }
    if (busy) {
      // Commits of this epoch are still draining their chains; poll until
      // they finish. A wedged commit cannot stall closes forever: node
      // failure aborts its transactions, and the inactivity sweep reaps
      // the rest.
      if (!close_retry_pending_) {
        close_retry_pending_ = true;
        sim_.After(1 * kMillisecond, [this] {
          close_retry_pending_ = false;
          TryCloseEpochs();
        });
      }
      return;
    }
    for (auto& dn : datanodes_) {
      if (!dn->alive()) continue;
      dn->CloseGcpEpoch(e);
      dn->RunIo(kGcpCloseCpu, nullptr);
    }
    closed_epoch_ = e;
  }
}

int64_t NdbCluster::DurableGcpEpoch() const {
  int64_t epoch = INT64_MAX;
  bool any = false;
  for (NodeId n = 0; n < static_cast<NodeId>(datanodes_.size()); ++n) {
    if (!layout_.alive(n)) continue;
    any = true;
    epoch = std::min(epoch, datanodes_[n]->durable_gcp_epoch());
  }
  return any ? epoch : 0;
}

void NdbCluster::HeartbeatTick(NodeId i) {
  PROF_ZONE("ndb.heartbeat.tick");
  if (!cluster_up_) return;
  NdbDatanode& self = *datanodes_[i];
  if (!self.alive()) return;
  const auto& nc = config_.node;

  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == i || !layout_.alive(j)) continue;
    NdbDatanode& peer = *datanodes_[j];
    network_.Send(self.host(), peer.host(), kHeartbeatBytes,
                  [this, i, j, &peer] {
                    peer.ReceiveMsg([this, i, j] {
                      last_heard_[j][i] = sim_.now();
                    });
                  });
  }

  // Failure detection: peers silent for too long are suspects.
  const Nanos deadline =
      sim_.now() - nc.heartbeat_interval * nc.heartbeat_misses_for_failure;
  bool any_suspect = false;
  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == i || !layout_.alive(j)) continue;
    if (last_heard_[i][j] < deadline) any_suspect = true;
  }
  if (any_suspect && !arbitration_in_flight_[i]) RequestArbitration(i);
}

int NdbCluster::CurrentArbitratorIndex() const {
  for (size_t m = 0; m < mgmt_.size(); ++m) {
    if (network_.topology().HostUp(mgmt_[m]->host())) {
      return static_cast<int>(m);
    }
  }
  return -1;
}

void NdbCluster::RequestArbitration(NodeId requester) {
  NdbDatanode& self = *datanodes_[requester];
  if (!self.alive()) return;
  const auto& nc = config_.node;
  const int arb = CurrentArbitratorIndex();
  if (arb < 0) {
    // No arbitrator anywhere: assume we are partitioned and shut down
    // gracefully (§IV-A2).
    RLOG_WARN(kLog, "node %d: no arbitrator available, shutting down",
              requester);
    DeclareNodeFailed(requester);
    return;
  }
  arbitration_in_flight_[requester] = true;

  const Nanos deadline =
      sim_.now() - nc.heartbeat_interval * nc.heartbeat_misses_for_failure;
  std::vector<bool> reachable(num_datanodes(), false);
  std::vector<NodeId> suspects;
  reachable[requester] = true;
  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == requester || !layout_.alive(j)) continue;
    if (last_heard_[requester][j] >= deadline) {
      reachable[j] = true;
    } else {
      suspects.push_back(j);
    }
  }

  auto answered = std::make_shared<bool>(false);
  NdbMgmtNode* arbitrator = mgmt_[arb].get();
  network_.Send(
      self.host(), arbitrator->host(), kArbBytes,
      [this, requester, arbitrator, reachable, suspects, answered] {
        const bool grant = arbitrator->HandleArbRequest(requester, reachable,
                                                        sim_.now());
        NdbDatanode& req_node = *datanodes_[requester];
        network_.Send(arbitrator->host(), req_node.host(), kArbBytes,
                      [this, requester, grant, suspects, answered] {
                        *answered = true;
                        arbitration_in_flight_[requester] = false;
                        if (!grant) {
                          RLOG_INFO(kLog, "node %d lost arbitration",
                                    requester);
                          DeclareNodeFailed(requester);
                          return;
                        }
                        for (NodeId s : suspects) DeclareNodeFailed(s);
                      });
      });

  sim_.After(nc.arbitration_timeout, [this, requester, answered] {
    if (*answered) return;
    arbitration_in_flight_[requester] = false;
    if (!datanodes_[requester]->alive()) return;
    RLOG_INFO(kLog, "node %d cannot reach arbitrator, shutting down",
              requester);
    DeclareNodeFailed(requester);
  });
}

void NdbCluster::DeclareNodeFailed(NodeId n) {
  if (!layout_.alive(n)) return;
  RLOG_INFO(kLog, "declaring datanode %d failed", n);

  // Take-over (§II-B2): surviving replicas of transactions coordinated by
  // the failed node resolve them. Transactions that had reached their
  // commit point roll forward (the primary may already have applied);
  // everything else is aborted, releasing locks and pending rows.
  auto rows = datanodes_[n]->DrainTxnRowsForTakeover();
  layout_.set_alive(n, false);
  datanodes_[n]->Shutdown();
  for (const auto& r : rows) {
    if (r.node == n || !layout_.alive(r.node)) continue;
    datanodes_[r.node]->ResolveTakenOverRow(r);
  }

  // Surviving coordinators abort transactions touching the failed node.
  for (auto& dn : datanodes_) {
    if (dn->alive()) dn->AbortTxnsInvolving(n);
  }

  if (!layout_.Viable()) {
    RLOG_ERROR(kLog, "node group lost all replicas; cluster down");
    ShutdownCluster();
  }
}

void NdbCluster::CrashDatanode(NodeId n) {
  network_.topology().SetHostUp(datanodes_[n]->host(), false);
  datanodes_[n]->Shutdown();
  layout_.ClearCatchup(n);
}

bool NdbCluster::RecoveryStillValid(NodeId n, uint64_t gen) const {
  return cluster_up_ && datanodes_[n]->recovery_generation() == gen &&
         datanodes_[n]->recovering();
}

NdbCluster::RecoveryStats* NdbCluster::RecoverySlot(size_t slot) {
  if (slot < recovery_log_base_) return nullptr;  // evicted by the cap
  return &recovery_log_[slot - recovery_log_base_];
}

void NdbCluster::AbandonRecovery(NodeId n, size_t slot,
                                 const std::string& reason,
                                 const std::function<void()>& done) {
  datanodes_[n]->SetCatchupAccepting(false);
  layout_.ClearCatchup(n);
  if (RecoveryStats* rec = RecoverySlot(slot)) {
    rec->aborted = true;
    rec->abort_reason = reason;
    tracer().EndTrace(rec->trace_root);
  }
  RLOG_WARN(kLog, "recovery of node %d abandoned: %s", n, reason.c_str());
  if (done) done();
}

void NdbCluster::RestartDatanode(NodeId n, std::function<void()> done) {
  PROF_ZONE("ndb.recovery.restart");
  // Guard on the process state, not the failure detector's view: a node
  // can restart before its crash was ever detected (layout_.alive may
  // still read true for a dead process).
  if (datanodes_[n]->alive()) {
    RLOG_WARN(kLog, "restart of node %d ignored: node is alive", n);
    if (done) done();
    return;
  }
  NdbDatanode& node = *datanodes_[n];
  if (node.recovering()) {
    RLOG_INFO(kLog, "restart of node %d ignored: recovery in progress "
                    "(phase %d)", n, static_cast<int>(node.recovery_phase()));
    if (done) done();
    return;
  }
  network_.topology().SetHostUp(node.host(), true);
  node.BeginRecovery();
  const uint64_t gen = node.recovery_generation();

  // Phase 1 — replay: what this node's own disk attests. The durability
  // invariant in one line: replay covers exactly checkpoint image +
  // flushed log; anything else must come from a live replica.
  const RedoJournal::ReplayPlan plan = node.journal().PlanReplay(INT64_MAX);
  RecoveryStats rec;
  rec.node = n;
  rec.started = sim_.now();
  rec.replay_entries = plan.entries;
  rec.replay_log_bytes = plan.log_bytes;
  rec.replay_image_bytes = plan.image_bytes;
  rec.trace_root = tracer().StartTrace("ndb.recovery", trace::Layer::kNdb,
                                       node.host(), layout_.az_of(n));
  recovery_log_.push_back(std::move(rec));
  if (static_cast<int>(recovery_log_.size()) > config_.node.recovery_log_cap) {
    recovery_log_.pop_front();
    ++recovery_log_base_;
    ++recoveries_dropped_;
  }
  const size_t slot = recovery_log_base_ + recovery_log_.size() - 1;
  RLOG_INFO(kLog, "restarting node %d: replaying %lld entries (%lld log + "
                  "%lld image bytes) since last LCP",
            n, static_cast<long long>(plan.entries),
            static_cast<long long>(plan.log_bytes),
            static_cast<long long>(plan.image_bytes));

  // The checkpoint image and the redo tail live on different disks: the
  // image read and the log read queue independently.
  const Nanos read_start = sim_.now();
  node.disk().Read(plan.image_bytes, [this, n, slot, gen, plan, done,
                                      read_start] {
    if (!RecoveryStillValid(n, gen)) {
      AbandonRecovery(n, slot, "node lost during image read", done);
      return;
    }
    datanodes_[n]->log_disk().Read(plan.log_bytes, [this, n, slot, gen, plan,
                                                    done, read_start] {
      if (!RecoveryStillValid(n, gen)) {
        AbandonRecovery(n, slot, "node lost during log read", done);
        return;
      }
      NdbDatanode& node = *datanodes_[n];
      if (RecoveryStats* rec = RecoverySlot(slot)) {
        tracer().AddSpanAt(rec->trace_root, "recovery.replay.read",
                           trace::Layer::kNdb, trace::Cause::kDisk,
                           node.host(), layout_.az_of(n), read_start,
                           sim_.now());
      }
      const Nanos apply_cpu = config_.cost.recovery_setup +
                              plan.entries * config_.cost.replay_per_entry;
      const Nanos apply_start = sim_.now();
      sim_.After(apply_cpu, [this, n, slot, gen, done, apply_start] {
        if (!RecoveryStillValid(n, gen)) {
          AbandonRecovery(n, slot, "node lost during replay", done);
          return;
        }
        NdbDatanode& node = *datanodes_[n];
        const NdbDatanode::ReplayResult res =
            node.ReplayFromJournal(INT64_MAX);
        if (RecoveryStats* rec = RecoverySlot(slot)) {
          rec->replay_digest = res.digest;
          rec->replay_deterministic = res.deterministic;
          rec->replay_covered = res.covered;
          rec->replay_done = sim_.now();
          tracer().AddSpanAt(rec->trace_root, "recovery.replay.apply",
                             trace::Layer::kNdb, trace::Cause::kCpu,
                             node.host(), layout_.az_of(n), apply_start,
                             sim_.now());
        }
        node.SetRecoveryPhase(NdbDatanode::RecoveryPhase::kResyncing);
        RecoveryResync(n, slot, gen, done);
      });
    });
  });
}

// Phase 2 — streaming resync: copy the delta (rows written or deleted
// while the node was down, plus anything its log lost) from a live
// node-group peer one partition at a time. Each partition is fenced
// quiescent, adopted, and opened for catch-up reads immediately — the
// node serves already-resynced partitions while the rest still stream.
void NdbCluster::RecoveryResync(NodeId n, size_t slot, uint64_t gen,
                                std::function<void()> done) {
  if (!RecoveryStillValid(n, gen)) {
    AbandonRecovery(n, slot, "node lost before resync", done);
    return;
  }
  const int group = layout_.group_of(n);
  NodeId source = kNoNode;
  for (NodeId peer = 0; peer < num_datanodes(); ++peer) {
    if (peer != n && layout_.group_of(peer) == group &&
        layout_.alive(peer) && datanodes_[peer]->alive()) {
      source = peer;
      break;
    }
  }
  if (source == kNoNode) {
    RLOG_ERROR(kLog, "restart of node %d: whole node group lost, cannot "
                     "recover from peers", n);
    datanodes_[n]->SetRecoveryPhase(NdbDatanode::RecoveryPhase::kDown);
    AbandonRecovery(n, slot, "whole node group lost", done);
    return;
  }
  RLOG_INFO(kLog, "resyncing node %d from node %d (streaming, %d partitions)",
            n, source, layout_.num_partitions());
  sim_.After(config_.cost.recovery_setup, [this, n, slot, gen, source, done] {
    StreamNextPartition(n, slot, gen, source, 0, done);
  });
}

void NdbCluster::StreamNextPartition(NodeId n, size_t slot, uint64_t gen,
                                     NodeId source, PartitionId next,
                                     std::function<void()> done) {
  PROF_ZONE("ndb.recovery.stream_partition");
  if (!RecoveryStillValid(n, gen)) {
    AbandonRecovery(n, slot, "node lost during resync", done);
    return;
  }
  if (!layout_.alive(source) || !datanodes_[source]->alive()) {
    // Source peer died mid-stream: retry the resync phase with a fresh
    // source. Partitions already fenced stay valid — live writes kept
    // flowing to them through the catch-up chain — so their deltas
    // re-check as (near) empty on the retry pass.
    RLOG_WARN(kLog, "restart of node %d: source %d died mid-copy, "
                    "retrying with another peer", n, source);
    if (RecoveryStats* rec = RecoverySlot(slot)) rec->attempts += 1;
    RecoveryResync(n, slot, gen, done);
    return;
  }
  // Skip partitions this node holds no replica of — unless some table is
  // fully replicated, in which case its rows hash to any partition and
  // every partition holds rows of this node.
  bool fully_replicated = false;
  for (TableId t = 0; t < catalog_->num_tables(); ++t) {
    if (catalog_->table(t).fully_replicated) {
      fully_replicated = true;
      break;
    }
  }
  while (next < layout_.num_partitions() && !fully_replicated) {
    bool mine = false;
    for (NodeId r : layout_.ReplicaChain(next)) {
      if (r == n) {
        mine = true;
        break;
      }
    }
    if (mine) break;
    ++next;
  }
  if (next >= layout_.num_partitions()) {
    FinishRecovery(n, slot, gen, source, done);
    return;
  }
  const PartitionId part = next;
  const ResyncDelta estimate =
      ComputeResync(n, source, /*apply=*/false, part);
  const Nanos xfer_time =
      static_cast<Nanos>(static_cast<double>(estimate.bytes) /
                         network_.config().nic_bytes_per_sec * 1e9);
  sim_.After(xfer_time, [this, n, slot, gen, source, part, done] {
    // Fence: wait until no in-flight transaction touches this partition,
    // then adopt its delta and open it for reads atomically.
    auto wait = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = wait;
    *wait = [this, n, slot, gen, source, part, weak, done] {
      auto self = weak.lock();
      if (!self) return;
      if (!RecoveryStillValid(n, gen)) {
        AbandonRecovery(n, slot, "node lost during resync", done);
        return;
      }
      if (!layout_.alive(source) || !datanodes_[source]->alive()) {
        RLOG_WARN(kLog, "restart of node %d: source %d died mid-copy, "
                        "retrying with another peer", n, source);
        if (RecoveryStats* rec = RecoverySlot(slot)) rec->attempts += 1;
        RecoveryResync(n, slot, gen, done);
        return;
      }
      for (NodeId peer = 0; peer < num_datanodes(); ++peer) {
        if (layout_.alive(peer) &&
            datanodes_[peer]->HasTxnTouchingPartition(part)) {
          sim_.After(10 * kMillisecond, [self] { (*self)(); });
          return;
        }
      }
      // Quiesced: adopt the delta and serve the partition immediately.
      // From here on, write chains include this node as a catch-up
      // backup, so the partition stays current while the rest stream.
      const ResyncDelta applied =
          ComputeResync(n, source, /*apply=*/true, part);
      if (RecoveryStats* rec = RecoverySlot(slot)) {
        rec->resync_rows += applied.rows;
        rec->resync_bytes += applied.bytes;
        rec->resync_deletes += applied.deletes;
        rec->streamed_parts += 1;
      }
      layout_.SetCatchupReady(n, part);
      datanodes_[n]->SetCatchupAccepting(true);
      StreamNextPartition(n, slot, gen, source, part + 1, done);
    };
    (*wait)();
  });
}

// Phase 3 — rebuild the journal from the source's (epoch-filtered
// adoption), write the rejoin checkpoint (image to the data disk, log
// tail to the log disk) and rejoin.
void NdbCluster::FinishRecovery(NodeId n, size_t slot, uint64_t gen,
                                NodeId source, std::function<void()> done) {
  NdbDatanode& node = *datanodes_[n];
  if (!layout_.alive(source) || !datanodes_[source]->alive()) {
    if (RecoveryStats* rec = RecoverySlot(slot)) rec->attempts += 1;
    RecoveryResync(n, slot, gen, done);
    return;
  }
  if (RecoveryStats* rec = RecoverySlot(slot)) {
    const Nanos resync_start =
        rec->replay_done >= 0 ? rec->replay_done : rec->started;
    tracer().AddSpanAt(
        rec->trace_root, "recovery.resync", trace::Layer::kNdb,
        trace::NetCause(layout_.az_of(source), layout_.az_of(n)),
        node.host(), layout_.az_of(n), resync_start, sim_.now(),
        layout_.az_of(n));
  }
  // Epoch-filtered adoption: the base image of the rebuilt journal holds
  // only rows at or below the cluster-durable epoch; everything newer
  // rides along as ordinary log records. A whole-cluster recovery
  // immediately after this rejoin therefore cuts at the durable epoch
  // exactly — the adopted checkpoint cannot smuggle post-durable commits
  // back in. See DESIGN §12.
  const NdbDatanode::AdoptResult adopted = node.AdoptJournalFrom(
      *datanodes_[source], DurableGcpEpoch(), closed_epoch_, sim_.now());
  node.set_gcp_epoch(gcp_epoch_);
  const Nanos write_start = sim_.now();
  node.disk().Write(adopted.image_bytes, [this, n, slot, gen, adopted, done,
                                          write_start] {
    if (!RecoveryStillValid(n, gen)) {
      AbandonRecovery(n, slot, "node lost during rejoin checkpoint", done);
      return;
    }
    datanodes_[n]->log_disk().Write(
        adopted.tail_bytes + config_.cost.redo_flush_overhead_bytes,
        [this, n, slot, gen, done, write_start] {
          if (!RecoveryStillValid(n, gen)) {
            AbandonRecovery(n, slot, "node lost during rejoin checkpoint",
                            done);
            return;
          }
          NdbDatanode& node = *datanodes_[n];
          RecoveryStats* rec = RecoverySlot(slot);
          if (rec != nullptr) {
            tracer().AddSpanAt(rec->trace_root, "recovery.checkpoint",
                               trace::Layer::kNdb, trace::Cause::kDisk,
                               node.host(), layout_.az_of(n), write_start,
                               sim_.now());
            rec->catchup_reads = node.catchup_reads_served();
          }
          node.Revive();
          layout_.set_alive(n, true);
          // Reset failure-detector state so peers do not instantly
          // re-suspect.
          const Nanos now = sim_.now();
          for (NodeId i = 0; i < num_datanodes(); ++i) {
            last_heard_[i][n] = now;
            last_heard_[n][i] = now;
          }
          if (rec != nullptr) {
            rec->serving_at = now;
            tracer().EndTrace(rec->trace_root);
            RLOG_INFO(kLog, "node %d serving again after %.3f s (replayed "
                            "%lld, resynced %lld bytes, %d partitions "
                            "streamed, %lld catch-up reads)",
                      n, (rec->serving_at - rec->started) / 1e9,
                      static_cast<long long>(rec->replay_entries),
                      static_cast<long long>(rec->resync_bytes),
                      rec->streamed_parts,
                      static_cast<long long>(rec->catchup_reads));
          }
          if (done) done();
        });
  });
}

NdbCluster::ResyncDelta NdbCluster::ComputeResync(NodeId n, NodeId source,
                                                  bool apply,
                                                  PartitionId part) {
  ResyncDelta delta;
  NdbDatanode& node = *datanodes_[n];
  NdbDatanode& peer = *datanodes_[source];
  for (TableId t = 0; t < catalog_->num_tables(); ++t) {
    std::vector<std::pair<Key, std::string>> puts;
    std::vector<Key> dels;
    // Rows the peer holds for n's partitions that n lacks or holds stale.
    peer.store().ForEachCommitted(t, [&](const Key& key,
                                         const std::string& value) {
      const PartitionId p = layout_.PartitionOf(t, key);
      if (part >= 0 && p != part) return;
      bool mine = false;
      for (NodeId r : layout_.ReplicaChain(t, p)) {
        if (r == n) {
          mine = true;
          break;
        }
      }
      if (!mine) return;
      const auto held = node.store().Read(t, key, 0);
      if (!held || *held != value) {
        delta.rows += 1;
        delta.bytes += static_cast<int64_t>(key.size()) +
                       static_cast<int64_t>(value.size());
        if (apply) puts.emplace_back(key, value);
      }
    });
    // Rows n replayed that the cluster has since deleted.
    node.store().ForEachCommitted(t, [&](const Key& key,
                                         const std::string&) {
      if (part >= 0 && layout_.PartitionOf(t, key) != part) return;
      if (!peer.store().ExistsCommitted(t, key)) {
        delta.deletes += 1;
        delta.bytes += static_cast<int64_t>(key.size()) + 16;
        if (apply) dels.push_back(key);
      }
    });
    if (apply) {
      for (auto& [key, value] : puts) {
        node.store().BootstrapPut(t, key, std::move(value));
      }
      for (const Key& key : dels) node.store().BootstrapDelete(t, key);
    }
  }
  return delta;
}

void NdbCluster::ShutdownCluster() {
  cluster_up_ = false;
  for (auto& dn : datanodes_) dn->Shutdown();
}

void NdbCluster::RecordReplicaRead(PartitionId part, int replica_idx) {
  if (replica_idx < 0) return;
  auto& row = replica_reads_[part];
  if (replica_idx >= static_cast<int>(row.size())) return;
  row[replica_idx] += 1;
}

void NdbCluster::ResetStats() {
  for (auto& row : replica_reads_) row.assign(row.size(), 0);
  for (auto& dn : datanodes_) dn->ResetStats();
}

void NdbCluster::BootstrapPut(TableId table, const Key& key,
                              std::string value) {
  const PartitionId part = layout_.PartitionOf(table, key);
  for (NodeId n : layout_.ReplicaChain(table, part)) {
    datanodes_[n]->store().BootstrapPut(table, key, value);
    datanodes_[n]->LogBootstrap(table, key, value);
  }
}

NdbCluster::ClusterRecoveryReport NdbCluster::RecoverFromCheckpoint() {
  assert(config_.node.enable_durability &&
         "recovery requires enable_durability");
  ClusterRecoveryReport report;
  // The recovery epoch: the newest epoch whose redo log is flushed on
  // EVERY node — except that a completed local checkpoint is itself
  // durable, so a node whose LCP already covers a newer epoch raises
  // the floor (its pre-LCP log segments are truncated).
  int64_t min_durable = INT64_MAX;
  int64_t max_base = 0;
  for (auto& dn : datanodes_) {
    min_durable = std::min(min_durable, dn->durable_gcp_epoch());
    // A base image may contain folded records newer than base_epoch
    // (partial-LCP rounds fold per partition); the cut must cover the
    // newest epoch any base fragment could hold.
    max_base = std::max({max_base, dn->journal().base_epoch(),
                         dn->journal().max_folded_epoch()});
  }
  report.epoch = std::max(min_durable, max_base);
  // Tally what the cut drops — acknowledged commits newer than the cut
  // (or appended but never flushed). Distinct transactions are counted
  // once even when several replicas logged them.
  std::set<TxnId> dropped;
  Nanos oldest_drop = -1;
  for (auto& dn : datanodes_) {
    const RedoJournal::LossReport loss =
        dn->journal().LossBeyond(report.epoch);
    report.dropped_entries += loss.entries;
    for (TxnId t : loss.txns) dropped.insert(t);
    if (loss.oldest_append >= 0 &&
        (oldest_drop < 0 || loss.oldest_append < oldest_drop)) {
      oldest_drop = loss.oldest_append;
    }
  }
  report.dropped_commits = static_cast<int64_t>(dropped.size());
  report.dropped_txns.assign(dropped.begin(), dropped.end());
  report.loss_window = oldest_drop >= 0 ? sim_.now() - oldest_drop : 0;
  RLOG_INFO(kLog, "cluster recovery from GCP epoch %lld: dropping %lld "
                  "post-cut commits (loss window %.3f s)",
            static_cast<long long>(report.epoch),
            static_cast<long long>(report.dropped_commits),
            report.loss_window / 1e9);

  const Nanos now = sim_.now();
  for (NodeId n = 0; n < num_datanodes(); ++n) {
    NdbDatanode& dn = *datanodes_[n];
    network_.topology().SetHostUp(dn.host(), true);
    dn.Shutdown();
    const NdbDatanode::ReplayResult res = dn.ReplayFromJournal(report.epoch);
    report.replayed_entries += res.entries;
    report.replay_deterministic =
        report.replay_deterministic && res.deterministic;
    // The surviving image becomes the node's restart checkpoint; the
    // dropped log tail is gone for good.
    dn.CheckpointAdoptedImage(report.epoch);
    dn.Revive();
    dn.set_gcp_epoch(gcp_epoch_);
    layout_.set_alive(n, true);
    for (NodeId i = 0; i < num_datanodes(); ++i) {
      last_heard_[i][n] = now;
      last_heard_[n][i] = now;
    }
  }
  // Every journal restarts from a fresh base at report.epoch; epochs at
  // or below the current GCP tick hold no records anywhere, so they are
  // closed by construction.
  closed_epoch_ = std::max(closed_epoch_, gcp_epoch_);
  cluster_up_ = true;
  return report;
}

NdbCluster::ThreadUtilization NdbCluster::AverageThreadUtilization(
    Nanos window_start) const {
  ThreadUtilization u{};
  int alive = 0;
  for (const auto& dn : datanodes_) {
    if (!dn->alive()) continue;
    ++alive;
    u.ldm += dn->ldm_pool().Utilization(window_start);
    u.tc += dn->tc_pool().Utilization(window_start);
    u.recv += dn->recv_pool().Utilization(window_start);
    u.send += dn->send_pool().Utilization(window_start);
    u.rep += dn->rep_pool().Utilization(window_start);
    u.io += dn->io_pool().Utilization(window_start);
    u.main += dn->main_pool().Utilization(window_start);
  }
  if (alive > 0) {
    const double d = alive;
    u.ldm /= d;
    u.tc /= d;
    u.recv /= d;
    u.send /= d;
    u.rep /= d;
    u.io /= d;
    u.main /= d;
  }
  return u;
}

}  // namespace repro::ndb
