#include "ndb/cluster.h"

#include <algorithm>
#include <cassert>
#include <climits>

#include "ndb/client.h"
#include "util/logging.h"

namespace repro::ndb {

namespace {
constexpr const char* kLog = "ndb.cluster";
constexpr int64_t kHeartbeatBytes = 48;
constexpr int64_t kArbBytes = 96;
constexpr int64_t kGcpBytesPerNode = 128 << 10;
}  // namespace

bool NdbMgmtNode::HandleArbRequest(NodeId requester,
                                   const std::vector<bool>& reachable,
                                   Nanos now) {
  if (last_grant_ < 0 || now - last_grant_ > kEpisodeWindow) {
    // New episode: the first claimant's view wins.
    granted_view_ = reachable;
    last_grant_ = now;
    decision_log_.push_back(
        ArbDecision{now, requester, true, true, granted_view_});
    return true;
  }
  const bool in_view = requester >= 0 &&
                       requester < static_cast<NodeId>(granted_view_.size()) &&
                       granted_view_[requester];
  if (in_view) last_grant_ = now;
  decision_log_.push_back(
      ArbDecision{now, requester, in_view, false, granted_view_});
  return in_view;
}

NdbCluster::NdbCluster(Simulation& sim, Network& network,
                       const Catalog* catalog, NdbClusterConfig config)
    : sim_(sim), network_(network), catalog_(catalog),
      config_(std::move(config)), layout_(config_.layout, catalog) {
  auto& topo = network_.topology();
  const int n = config_.layout.num_datanodes;
  datanodes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    const HostId host =
        topo.AddHost(config_.layout.node_az[i], StrFormat("ndb-dn-%d", i));
    datanodes_.push_back(std::make_unique<NdbDatanode>(*this, i, host));
  }
  for (size_t m = 0; m < config_.mgmt_az.size(); ++m) {
    const HostId host = topo.AddHost(config_.mgmt_az[m],
                                     StrFormat("ndb-mgmt-%zu", m));
    mgmt_.push_back(std::make_unique<NdbMgmtNode>(static_cast<int>(m), host));
  }
  last_heard_.assign(n, std::vector<Nanos>(n, 0));
  arbitration_in_flight_.assign(n, false);
  replica_reads_.assign(layout_.num_partitions(),
                        std::vector<int64_t>(n, 0));
}

NdbCluster::~NdbCluster() {
  for (auto& t : timers_) t.Cancel();
}

trace::Tracer& NdbCluster::tracer() { return sim_.tracer(); }

ApiNodeId NdbCluster::RegisterApi(NdbApiNode* api) {
  apis_.push_back(api);
  return static_cast<ApiNodeId>(apis_.size()) - 1;
}

void NdbCluster::StartProtocols() {
  assert(!protocols_started_);
  protocols_started_ = true;
  const auto& nc = config_.node;
  const Nanos start = sim_.now();
  for (auto& row : last_heard_) row.assign(row.size(), start);

  for (NodeId i = 0; i < num_datanodes(); ++i) {
    timers_.push_back(
        sim_.Every(nc.heartbeat_interval, [this, i] { HeartbeatTick(i); }));
    timers_.push_back(sim_.Every(nc.redo_flush_interval, [this, i] {
      datanodes_[i]->FlushRedo();
    }));
    timers_.push_back(sim_.Every(500 * kMillisecond, [this, i] {
      if (datanodes_[i]->alive()) datanodes_[i]->SweepInactiveTxns();
    }));
  }
  // Global checkpoint: periodic durable epoch across node groups. Each
  // node marks the epoch durable when its checkpoint write hits disk.
  timers_.push_back(sim_.Every(nc.gcp_interval, [this] {
    if (!cluster_up_) return;
    ++gcp_epoch_;
    for (auto& dn : datanodes_) {
      if (!dn->alive()) continue;
      NdbDatanode* node = dn.get();
      node->set_gcp_epoch(gcp_epoch_);
      node->RunIo(5 * kMicrosecond, [node] {
        node->disk().Write(kGcpBytesPerNode,
                           [node] { node->MarkGcpDurable(); });
      });
    }
  }));
}

void NdbCluster::HeartbeatTick(NodeId i) {
  if (!cluster_up_) return;
  NdbDatanode& self = *datanodes_[i];
  if (!self.alive()) return;
  const auto& nc = config_.node;

  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == i || !layout_.alive(j)) continue;
    NdbDatanode& peer = *datanodes_[j];
    network_.Send(self.host(), peer.host(), kHeartbeatBytes,
                  [this, i, j, &peer] {
                    peer.ReceiveMsg([this, i, j] {
                      last_heard_[j][i] = sim_.now();
                    });
                  });
  }

  // Failure detection: peers silent for too long are suspects.
  const Nanos deadline =
      sim_.now() - nc.heartbeat_interval * nc.heartbeat_misses_for_failure;
  bool any_suspect = false;
  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == i || !layout_.alive(j)) continue;
    if (last_heard_[i][j] < deadline) any_suspect = true;
  }
  if (any_suspect && !arbitration_in_flight_[i]) RequestArbitration(i);
}

int NdbCluster::CurrentArbitratorIndex() const {
  for (size_t m = 0; m < mgmt_.size(); ++m) {
    if (network_.topology().HostUp(mgmt_[m]->host())) {
      return static_cast<int>(m);
    }
  }
  return -1;
}

void NdbCluster::RequestArbitration(NodeId requester) {
  NdbDatanode& self = *datanodes_[requester];
  if (!self.alive()) return;
  const auto& nc = config_.node;
  const int arb = CurrentArbitratorIndex();
  if (arb < 0) {
    // No arbitrator anywhere: assume we are partitioned and shut down
    // gracefully (§IV-A2).
    RLOG_WARN(kLog, "node %d: no arbitrator available, shutting down",
              requester);
    DeclareNodeFailed(requester);
    return;
  }
  arbitration_in_flight_[requester] = true;

  const Nanos deadline =
      sim_.now() - nc.heartbeat_interval * nc.heartbeat_misses_for_failure;
  std::vector<bool> reachable(num_datanodes(), false);
  std::vector<NodeId> suspects;
  reachable[requester] = true;
  for (NodeId j = 0; j < num_datanodes(); ++j) {
    if (j == requester || !layout_.alive(j)) continue;
    if (last_heard_[requester][j] >= deadline) {
      reachable[j] = true;
    } else {
      suspects.push_back(j);
    }
  }

  auto answered = std::make_shared<bool>(false);
  NdbMgmtNode* arbitrator = mgmt_[arb].get();
  network_.Send(
      self.host(), arbitrator->host(), kArbBytes,
      [this, requester, arbitrator, reachable, suspects, answered] {
        const bool grant = arbitrator->HandleArbRequest(requester, reachable,
                                                        sim_.now());
        NdbDatanode& req_node = *datanodes_[requester];
        network_.Send(arbitrator->host(), req_node.host(), kArbBytes,
                      [this, requester, grant, suspects, answered] {
                        *answered = true;
                        arbitration_in_flight_[requester] = false;
                        if (!grant) {
                          RLOG_INFO(kLog, "node %d lost arbitration",
                                    requester);
                          DeclareNodeFailed(requester);
                          return;
                        }
                        for (NodeId s : suspects) DeclareNodeFailed(s);
                      });
      });

  sim_.After(nc.arbitration_timeout, [this, requester, answered] {
    if (*answered) return;
    arbitration_in_flight_[requester] = false;
    if (!datanodes_[requester]->alive()) return;
    RLOG_INFO(kLog, "node %d cannot reach arbitrator, shutting down",
              requester);
    DeclareNodeFailed(requester);
  });
}

void NdbCluster::DeclareNodeFailed(NodeId n) {
  if (!layout_.alive(n)) return;
  RLOG_INFO(kLog, "declaring datanode %d failed", n);

  // Take-over (§II-B2): surviving replicas of transactions coordinated by
  // the failed node resolve them. Transactions that had reached their
  // commit point roll forward (the primary may already have applied);
  // everything else is aborted, releasing locks and pending rows.
  auto rows = datanodes_[n]->DrainTxnRowsForTakeover();
  layout_.set_alive(n, false);
  datanodes_[n]->Shutdown();
  for (const auto& r : rows) {
    if (r.node == n || !layout_.alive(r.node)) continue;
    datanodes_[r.node]->ResolveTakenOverRow(r);
  }

  // Surviving coordinators abort transactions touching the failed node.
  for (auto& dn : datanodes_) {
    if (dn->alive()) dn->AbortTxnsInvolving(n);
  }

  if (!layout_.Viable()) {
    RLOG_ERROR(kLog, "node group lost all replicas; cluster down");
    ShutdownCluster();
  }
}

void NdbCluster::CrashDatanode(NodeId n) {
  network_.topology().SetHostUp(datanodes_[n]->host(), false);
  datanodes_[n]->Shutdown();
}

void NdbCluster::RestartDatanode(NodeId n, std::function<void()> done) {
  if (layout_.alive(n)) {
    RLOG_WARN(kLog, "restart of node %d ignored: node is alive", n);
    if (done) done();
    return;
  }
  NdbDatanode& node = *datanodes_[n];
  network_.topology().SetHostUp(node.host(), true);

  // Source peer: a surviving member of the node group (it holds exactly
  // the partitions — and fully-replicated copy fragments — we need).
  NodeId source = kNoNode;
  const int group = layout_.group_of(n);
  for (NodeId peer = 0; peer < num_datanodes(); ++peer) {
    if (peer != n && layout_.group_of(peer) == group &&
        layout_.alive(peer)) {
      source = peer;
      break;
    }
  }
  if (source == kNoNode) {
    RLOG_ERROR(kLog, "restart of node %d: whole node group lost, cannot "
                     "recover from peers", n);
    if (done) done();
    return;
  }

  // Simulated copy time: peer data volume over the NIC (plus setup).
  const int64_t bytes = datanodes_[source]->store().total_bytes();
  const Nanos copy_time =
      50 * kMillisecond +
      static_cast<Nanos>(static_cast<double>(bytes) /
                         network_.config().nic_bytes_per_sec * 1e9);
  RLOG_INFO(kLog, "restarting node %d: copying ~%lld bytes from node %d",
            n, static_cast<long long>(bytes), source);

  sim_.After(copy_time, [this, n, source, group, done = std::move(done)] {
    // Fence: wait until no in-flight transaction touches the group, then
    // adopt the peer's partition images atomically. (The incremental
    // catch-up log of real NDB is summarised by this final copy.)
    auto wait = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = wait;
    *wait = [this, n, source, group, weak, done] {
      auto self = weak.lock();
      if (!self) return;
      if (!cluster_up_) {
        if (done) done();
        return;
      }
      if (!layout_.alive(source)) {
        // Source peer died while we were waiting to adopt its image.
        // Start over with a fresh source; abandoning here would leave the
        // node host-up but never rejoined until some later restart call.
        RLOG_WARN(kLog, "restart of node %d: source %d died mid-copy, "
                        "retrying with another peer", n, source);
        RestartDatanode(n, done);
        return;
      }
      for (NodeId peer = 0; peer < num_datanodes(); ++peer) {
        if (layout_.alive(peer) &&
            datanodes_[peer]->HasTxnTouchingGroup(group)) {
          sim_.After(10 * kMillisecond, [self] { (*self)(); });
          return;
        }
      }
      // Quiesced: copy and rejoin.
      NdbDatanode& node = *datanodes_[n];
      NdbDatanode& peer = *datanodes_[source];
      for (TableId t = 0; t < catalog_->num_tables(); ++t) {
        peer.store().ForEachCommitted(t, [this, t, n, &node](
                                             const Key& key,
                                             const std::string& value) {
          const PartitionId p = layout_.PartitionOf(t, key);
          for (NodeId r : layout_.ReplicaChain(t, p)) {
            if (r == n) {
              node.store().BootstrapPut(t, key, value);
              break;
            }
          }
        });
      }
      node.Revive();
      layout_.set_alive(n, true);
      // Reset failure-detector state so peers do not instantly re-suspect.
      const Nanos now = sim_.now();
      for (NodeId i = 0; i < num_datanodes(); ++i) {
        last_heard_[i][n] = now;
        last_heard_[n][i] = now;
      }
      if (done) done();
    };
    (*wait)();
  });
}

void NdbCluster::ShutdownCluster() {
  cluster_up_ = false;
  for (auto& dn : datanodes_) dn->Shutdown();
}

void NdbCluster::RecordReplicaRead(PartitionId part, int replica_idx) {
  if (replica_idx < 0) return;
  auto& row = replica_reads_[part];
  if (replica_idx >= static_cast<int>(row.size())) return;
  row[replica_idx] += 1;
}

void NdbCluster::ResetStats() {
  for (auto& row : replica_reads_) row.assign(row.size(), 0);
  for (auto& dn : datanodes_) dn->ResetStats();
}

void NdbCluster::BootstrapPut(TableId table, const Key& key,
                              std::string value) {
  const PartitionId part = layout_.PartitionOf(table, key);
  for (NodeId n : layout_.ReplicaChain(table, part)) {
    datanodes_[n]->store().BootstrapPut(table, key, value);
    datanodes_[n]->LogBootstrap(table, key, value);
  }
}

void NdbCluster::RecoverFromCheckpoint() {
  assert(config_.node.enable_durability &&
         "recovery requires enable_durability");
  // The recovery epoch: the newest checkpoint durable on EVERY node.
  int64_t epoch = INT64_MAX;
  for (auto& dn : datanodes_) {
    epoch = std::min(epoch, dn->durable_gcp_epoch());
  }
  RLOG_INFO(kLog, "cluster recovery from GCP epoch %lld",
            static_cast<long long>(epoch));
  const Nanos now = sim_.now();
  for (NodeId n = 0; n < num_datanodes(); ++n) {
    NdbDatanode& dn = *datanodes_[n];
    network_.topology().SetHostUp(dn.host(), true);
    dn.Shutdown();
    dn.RestoreFromRedo(epoch);
    dn.Revive();
    layout_.set_alive(n, true);
    for (NodeId i = 0; i < num_datanodes(); ++i) {
      last_heard_[i][n] = now;
      last_heard_[n][i] = now;
    }
  }
  cluster_up_ = true;
}

NdbCluster::ThreadUtilization NdbCluster::AverageThreadUtilization(
    Nanos window_start) const {
  ThreadUtilization u{};
  int alive = 0;
  for (const auto& dn : datanodes_) {
    if (!dn->alive()) continue;
    ++alive;
    u.ldm += dn->ldm_pool().Utilization(window_start);
    u.tc += dn->tc_pool().Utilization(window_start);
    u.recv += dn->recv_pool().Utilization(window_start);
    u.send += dn->send_pool().Utilization(window_start);
    u.rep += dn->rep_pool().Utilization(window_start);
    u.io += dn->io_pool().Utilization(window_start);
    u.main += dn->main_pool().Utilization(window_start);
  }
  if (alive > 0) {
    const double d = alive;
    u.ldm /= d;
    u.tc /= d;
    u.recv /= d;
    u.send /= d;
    u.rep /= d;
    u.io /= d;
    u.main /= d;
  }
  return u;
}

}  // namespace repro::ndb
