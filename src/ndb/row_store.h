// Per-datanode in-memory row storage with pending (uncommitted) versions.
//
// A replica holds the committed image of every row of its partitions plus
// at most one pending operation per row (the strict-2PL lock on the
// primary guarantees single-writer). Prepared writes become visible to
// their own transaction immediately (read-your-writes inside a
// transaction) and to everyone else at commit. Keys are kept ordered so
// directory listings — keys share a "parentId/" prefix under HopsFS's
// application-defined partitioning — are a contiguous range scan.
#pragma once

#include <functional>
#include <optional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ndb/types.h"
#include "util/time.h"

namespace repro::ndb {

enum class WriteType { kPut, kDelete };

class RowStore {
 public:
  explicit RowStore(int num_tables);

  // Committed read; pending changes of `reader_txn` (if any) are visible.
  std::optional<std::string> Read(TableId table, const Key& key,
                                  TxnId reader_txn) const;

  // Stages a write. Returns false if another transaction's pending write
  // still occupies the row (its Commit/Complete has not landed yet) — the
  // caller must retry shortly; the slot frees when that write applies or
  // aborts. kInsert semantics are enforced by the caller (primary
  // replica) via ExistsCommitted. `tc` and `staged_at` record which
  // coordinator staged the write and when, so the orphaned-slot sweep can
  // trace a stuck pending write back to its transaction.
  [[nodiscard]] bool Prepare(TableId table, const Key& key, WriteType type,
                             std::string value, TxnId txn,
                             NodeId tc = kNoNode, Nanos staged_at = 0);

  // Applies txn's pending op on the row, making it the committed image.
  // Returns the applied mutation (for redo logging), or nullopt if there
  // was nothing pending for txn on that row.
  struct AppliedWrite {
    WriteType type;
    std::string value;
  };
  std::optional<AppliedWrite> Commit(TableId table, const Key& key,
                                     TxnId txn);

  // Drops txn's pending op on the row.
  void Abort(TableId table, const Key& key, TxnId txn);

  bool ExistsCommitted(TableId table, const Key& key) const;
  bool HasPending(TableId table, const Key& key) const;

  // All committed rows whose key starts with `prefix`, plus the reader's
  // own pending rows in that range. Returned in key order.
  std::vector<std::pair<Key, std::string>> ScanPrefix(TableId table,
                                                      const Key& prefix,
                                                      TxnId reader_txn) const;

  // Drops everything (cluster-recovery restore path).
  void Clear();

  int64_t row_count(TableId table) const;
  int64_t total_bytes() const { return total_bytes_; }

  // Node id stamped on $REPRO_TRACE_KEY row-trace lines (see TraceKey).
  void set_debug_owner(int id) { debug_owner_ = id; }

  // Direct committed write, bypassing the protocol. Used only for bulk
  // namespace bootstrap before an experiment starts and for node-recovery
  // data copy.
  void BootstrapPut(TableId table, const Key& key, std::string value);
  // Direct committed delete (redo replay of delete entries).
  void BootstrapDelete(TableId table, const Key& key);

  // Iterates the committed image of one table (recovery data copy).
  void ForEachCommitted(
      TableId table,
      const std::function<void(const Key&, const std::string&)>& fn) const;

  // Iterates every pending (staged, not yet applied) write across all
  // tables. Used by the orphaned-slot sweep: a pending write whose
  // transaction no longer exists at its coordinator — and which take-over
  // never saw — must be resolved or it wedges the row forever.
  struct PendingRow {
    TableId table;
    Key key;
    TxnId txn;
    NodeId tc;        // coordinator recorded at Prepare
    Nanos staged_at;  // when it was staged
    WriteType type;
    std::string value;
  };
  void ForEachPending(const std::function<void(const PendingRow&)>& fn) const;

 private:
  struct Row {
    std::optional<std::string> committed;
    // Pending op staged by the prepare phase.
    bool has_pending = false;
    TxnId pending_txn = 0;
    NodeId pending_tc = kNoNode;  // coordinator that staged the write
    Nanos pending_since = 0;      // when it was staged
    WriteType pending_type = WriteType::kPut;
    std::string pending_value;
  };

  void AccountResize(const Row& row, int64_t delta_hint);

  std::vector<std::map<Key, Row>> tables_;
  int64_t total_bytes_ = 0;
  int debug_owner_ = -1;
};

}  // namespace repro::ndb
