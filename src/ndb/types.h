// Common identifiers and enums for the NDB-style metadata store.
#pragma once

#include <cstdint>
#include <string>

namespace repro::ndb {

using NodeId = int;       // NDB datanode index within the cluster
using ApiNodeId = int;    // API (client library) node index
using TableId = int;
using PartitionId = int;
using TxnId = uint64_t;

constexpr NodeId kNoNode = -1;

// Row keys are opaque strings; tables define how the partition key is
// derived from them (see TableDef::part_key).
using Key = std::string;

enum class LockMode {
  kReadCommitted,  // no lock; routed per table options (§IV-A3)
  kShared,         // always served by the primary replica
  kExclusive,      // always served by the primary replica
};

const char* LockModeName(LockMode mode);

}  // namespace repro::ndb
