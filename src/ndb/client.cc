#include "ndb/client.h"

#include <algorithm>
#include <cassert>

#include "resilience/deadline.h"
#include "util/logging.h"

namespace repro::ndb {

NdbApiNode::NdbApiNode(NdbCluster& cluster, HostId host,
                       AzId location_domain_id)
    : cluster_(cluster), host_(host), az_(location_domain_id) {
  id_ = cluster_.RegisterApi(this);
}

NodeId NdbApiNode::PickTc(const TableDef* td, TableId table,
                          const Key* hint_key) {
  auto& layout = cluster_.layout();
  const bool az_aware = cluster_.flags().az_aware && az_ != kNoAz;

  if (td != nullptr && hint_key != nullptr) {
    const PartitionId part = layout.PartitionOf(table, *hint_key);
    if (td->read_backup && !td->fully_replicated) {
      // Case 1: any replica of the partition, closest AZ first.
      return layout.PickByProximity(az_, layout.ReplicaChain(part), az_aware,
                                    rr_++);
    }
    if (td->fully_replicated) {
      // Case 2: every node holds the data; pick by proximity.
      std::vector<NodeId> all(layout.num_nodes());
      for (int n = 0; n < layout.num_nodes(); ++n) all[n] = n;
      return layout.PickByProximity(az_, all, az_aware, rr_++);
    }
    // Case 3: nodes derived from the partition key. AZ-aware picks the
    // same-AZ member (reads still reroute to the primary); classic NDB
    // picks the primary replica (distribution awareness).
    if (az_aware) {
      return layout.PickByProximity(az_, layout.ReplicaChain(part), true,
                                    rr_++);
    }
    return layout.PrimaryOf(part);
  }

  // Case 4: no hint — all datanodes ordered by proximity.
  std::vector<NodeId> all(layout.num_nodes());
  for (int n = 0; n < layout.num_nodes(); ++n) all[n] = n;
  return layout.PickByProximity(az_, all, az_aware, rr_++);
}

TxnId NdbApiNode::Begin(TableId hint_table, const Key& hint_key) {
  const TableDef& td = cluster_.catalog().table(hint_table);
  const NodeId tc = PickTc(&td, hint_table, &hint_key);
  if (tc == kNoNode) return 0;
  const TxnId txn = cluster_.NextTxnId();
  txns_[txn] = TxnState{tc, false, 0};
  return txn;
}

TxnId NdbApiNode::BeginNoHint() {
  const NodeId tc = PickTc(nullptr, 0, nullptr);
  if (tc == kNoNode) return 0;
  const TxnId txn = cluster_.NextTxnId();
  txns_[txn] = TxnState{tc, false, 0};
  return txn;
}

NdbApiNode::TxnState* NdbApiNode::FindTxn(TxnId txn) {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

void NdbApiNode::SetTxnDeadline(TxnId txn, Nanos deadline) {
  if (TxnState* t = FindTxn(txn)) t->deadline = deadline;
}

void NdbApiNode::SetTxnTrace(TxnId txn, trace::SpanId span) {
  if (TxnState* t = FindTxn(txn)) t->span = span;
}

uint64_t NdbApiNode::RegisterOp(TxnId txn, PendingOp op) {
  const uint64_t op_id = next_op_id_++;
  op.txn = txn;
  pending_.emplace(op_id, std::move(op));
  // The local timer never outlives the op's deadline: the op fails
  // exactly at the deadline with no extra pending events.
  Nanos timeout = op_timeout_;
  if (TxnState* t = FindTxn(txn)) {
    t->inflight += 1;
    timeout = resilience::ClampToDeadline(timeout, t->deadline,
                                          cluster_.sim().now());
  }

  cluster_.sim().After(timeout, [this, op_id] {
    auto it = pending_.find(op_id);
    if (it == pending_.end()) return;  // already answered
    ++timeouts_;
    TxnState* t = FindTxn(it->second.txn);
    if (t != nullptr) t->broken = true;
    // An op that ran out of *deadline* (not the op timeout) reports
    // kDeadlineExceeded so the caller fails fast instead of retrying.
    const bool past_deadline =
        t != nullptr &&
        resilience::DeadlineExpired(t->deadline, cluster_.sim().now());
    if (past_deadline) metrics::Bump(deadline_exceeded_);
    FailOp(op_id, past_deadline ? Code::kDeadlineExceeded : Code::kTimedOut);
  });
  return op_id;
}

void NdbApiNode::SendToTc(TxnId txn, NodeId tc, int64_t bytes,
                          std::function<void(NdbDatanode&)> fn,
                          trace::SpanId parent) {
  (void)txn;
  NdbDatanode& node = cluster_.datanode(tc);
  const AzId dst_az = cluster_.layout().az_of(tc);
  const trace::SpanId hop = cluster_.sim().tracer().StartSpan(
      parent, "net.api_tc", trace::Layer::kNdb, trace::NetCause(az_, dst_az),
      host_, az_, dst_az);
  cluster_.network().Send(host_, node.host(), bytes,
                          [this, &node, hop, fn = std::move(fn)] {
                            cluster_.sim().tracer().EndSpan(hop);
                            node.ReceiveMsg([&node, fn] { fn(node); });
                          });
}

void NdbApiNode::FailOp(uint64_t op_id, Code code) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  cluster_.sim().tracer().EndSpan(op.span);
  cluster_.sim().tracer().EndSpan(op.hedge_span);
  if (TxnState* t = FindTxn(op.txn)) t->inflight -= 1;
  if (op.read_cb) op.read_cb(code, std::nullopt);
  if (op.write_cb) op.write_cb(code);
  if (op.scan_cb) op.scan_cb(code, {});
}

void NdbApiNode::SendKeyOp(TxnId txn, KeyOpReq req, PendingOp op) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr || t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    const Code code = t == nullptr || t->broken ? Code::kAborted
                                                : Code::kUnavailable;
    if (op.read_cb) op.read_cb(code, std::nullopt);
    if (op.write_cb) op.write_cb(code);
    if (op.scan_cb) op.scan_cb(code, {});
    return;
  }
  // Fail fast before spending a network round trip on doomed work.
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    if (op.read_cb) op.read_cb(Code::kDeadlineExceeded, std::nullopt);
    if (op.write_cb) op.write_cb(Code::kDeadlineExceeded);
    if (op.scan_cb) op.scan_cb(Code::kDeadlineExceeded, {});
    return;
  }
  req.txn = txn;
  req.api = id_;
  req.deadline = t->deadline;
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, req.is_write ? "ndb.write" : "ndb.read", trace::Layer::kNdb,
      trace::Cause::kWork, host_, az_);
  req.span = op.span;
  req.op_id = RegisterOp(txn, std::move(op));
  const bool hedgeable = hedge_read_delay_ > 0 && !req.is_write &&
                         req.mode == LockMode::kReadCommitted;
  const int64_t bytes =
      cluster_.cost().msg_read_req + static_cast<int64_t>(req.value.size());
  if (hedgeable) MaybeHedgeRead(txn, req.op_id, req);
  const trace::SpanId span = req.span;
  SendToTc(txn, t->tc, bytes,
           [req = std::move(req)](NdbDatanode& n) mutable {
             n.TcKeyOp(std::move(req));
           },
           span);
}

void NdbApiNode::MaybeHedgeRead(TxnId txn, uint64_t op_id,
                                const KeyOpReq& req) {
  cluster_.sim().After(hedge_read_delay_, [this, txn, op_id, req] {
    auto it = pending_.find(op_id);
    if (it == pending_.end()) return;  // answered in time: no hedge
    TxnState* t = FindTxn(txn);
    if (t == nullptr || t->broken || !cluster_.cluster_up()) return;
    // Send the same op (same op_id) to a backup replica of the
    // partition; OnOpReply's pending-op erase makes the race benign.
    auto& layout = cluster_.layout();
    const PartitionId part = layout.PartitionOf(req.table, req.key);
    NodeId alt = kNoNode;
    for (NodeId n : layout.ReplicaChain(part)) {
      if (n != t->tc && layout.alive(n)) {
        alt = n;
        break;
      }
    }
    if (alt == kNoNode) return;  // no second replica to hedge to
    it->second.hedge_tc = alt;
    metrics::Bump(hedges_sent_);
    const int64_t bytes = cluster_.cost().msg_read_req;
    // The duplicated work is blamed on the resilience stack (kRetry).
    const trace::SpanId hspan = cluster_.sim().tracer().StartSpan(
        req.span, "ndb.read_hedge", trace::Layer::kNdb, trace::Cause::kRetry,
        host_, az_);
    it->second.hedge_span = hspan;
    KeyOpReq hreq = req;
    hreq.span = hspan;
    SendToTc(txn, alt, bytes,
             [hreq = std::move(hreq)](NdbDatanode& n) mutable {
               n.TcKeyOp(std::move(hreq));
             },
             hspan);
  });
}

void NdbApiNode::Read(TxnId txn, TableId table, Key key, LockMode mode,
                      ReadCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.mode = mode;
  PendingOp op;
  op.read_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Insert(TxnId txn, TableId table, Key key, std::string value,
                        WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.insert_only = true;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Update(TxnId txn, TableId table, Key key, std::string value,
                        WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.must_exist = true;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Write(TxnId txn, TableId table, Key key, std::string value,
                       WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Delete(TxnId txn, TableId table, Key key, WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kDelete;
  req.must_exist = true;
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::ScanPrefix(TxnId txn, TableId table, Key prefix, ScanCb cb) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr || t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    cb(t == nullptr || t->broken ? Code::kAborted : Code::kUnavailable, {});
    return;
  }
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    cb(Code::kDeadlineExceeded, {});
    return;
  }
  ScanReq req;
  req.txn = txn;
  req.api = id_;
  req.table = table;
  req.prefix = std::move(prefix);
  req.deadline = t->deadline;
  PendingOp op;
  op.scan_cb = std::move(cb);
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, "ndb.scan", trace::Layer::kNdb, trace::Cause::kWork, host_,
      az_);
  req.span = op.span;
  req.op_id = RegisterOp(txn, std::move(op));
  const trace::SpanId span = req.span;
  SendToTc(txn, t->tc, cluster_.cost().msg_scan_req,
           [req = std::move(req)](NdbDatanode& n) mutable {
             n.TcScan(std::move(req));
           },
           span);
}

void NdbApiNode::Commit(TxnId txn, WriteCb cb) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr) {
    cb(Code::kAborted);
    return;
  }
  if (t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    Abort(txn);
    cb(Code::kAborted);
    return;
  }
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    Abort(txn);
    cb(Code::kDeadlineExceeded);
    return;
  }
  PendingOp op;
  op.write_cb = [this, txn, cb = std::move(cb)](Code code) {
    txns_.erase(txn);
    cb(code);
  };
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, "ndb.commit", trace::Layer::kNdb, trace::Cause::kWork, host_,
      az_);
  const trace::SpanId cspan = op.span;
  const uint64_t op_id = RegisterOp(txn, std::move(op));
  const NodeId tc = t->tc;
  SendToTc(txn, tc, cluster_.cost().msg_small,
           [txn, op_id, api = id_, cspan](NdbDatanode& n) {
             n.TcCommit(txn, op_id, api, cspan);
           },
           cspan);
}

void NdbApiNode::Abort(TxnId txn) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr) return;
  if (cluster_.layout().alive(t->tc) && cluster_.cluster_up()) {
    SendToTc(txn, t->tc, cluster_.cost().msg_small,
             [txn](NdbDatanode& n) { n.TcAbort(txn); });
  }
  txns_.erase(txn);
}

void NdbApiNode::OnOpReply(OpReply reply) {
  auto it = pending_.find(reply.op_id);
  if (it == pending_.end()) return;  // late reply after timeout / hedge loss
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  cluster_.sim().tracer().EndSpan(op.span);
  cluster_.sim().tracer().EndSpan(op.hedge_span);
  if (TxnState* t = FindTxn(op.txn)) t->inflight -= 1;
  if (op.hedge_tc != kNoNode && reply.from == op.hedge_tc) {
    metrics::Bump(hedge_wins_);
  }

  if (op.read_cb) {
    if (reply.code == Code::kOk || reply.code == Code::kNotFound) {
      op.read_cb(reply.code == Code::kNotFound ? Code::kNotFound : Code::kOk,
                 std::move(reply.value));
    } else {
      op.read_cb(reply.code, std::nullopt);
    }
  }
  if (op.write_cb) op.write_cb(reply.code);
  if (op.scan_cb) op.scan_cb(reply.code, std::move(reply.rows));
}

}  // namespace repro::ndb
