#include "ndb/client.h"

#include <algorithm>
#include <cassert>

#include "resilience/deadline.h"
#include "util/logging.h"

namespace repro::ndb {

NdbApiNode::NdbApiNode(NdbCluster& cluster, HostId host,
                       AzId location_domain_id)
    : cluster_(cluster), host_(host), az_(location_domain_id) {
  id_ = cluster_.RegisterApi(this);
}

NdbApiNode::~NdbApiNode() { cluster_.UnregisterApi(id_); }

NodeId NdbApiNode::PickTc(const TableDef* td, TableId table,
                          std::string_view hint_key) {
  auto& layout = cluster_.layout();
  const bool az_aware = cluster_.flags().az_aware && az_ != kNoAz;

  if (td != nullptr) {
    const PartitionId part = layout.PartitionOf(table, hint_key);
    if (td->read_backup && !td->fully_replicated) {
      // Case 1: any replica of the partition, closest AZ first.
      return layout.PickByProximity(az_, layout.ReplicaChain(part), az_aware,
                                    rr_++);
    }
    if (td->fully_replicated) {
      // Case 2: every node holds the data; pick by proximity.
      std::vector<NodeId> all(layout.num_nodes());
      for (int n = 0; n < layout.num_nodes(); ++n) all[n] = n;
      return layout.PickByProximity(az_, all, az_aware, rr_++);
    }
    // Case 3: nodes derived from the partition key. AZ-aware picks the
    // same-AZ member (reads still reroute to the primary); classic NDB
    // picks the primary replica (distribution awareness).
    if (az_aware) {
      return layout.PickByProximity(az_, layout.ReplicaChain(part), true,
                                    rr_++);
    }
    return layout.PrimaryOf(part);
  }

  // Case 4: no hint — all datanodes ordered by proximity.
  std::vector<NodeId> all(layout.num_nodes());
  for (int n = 0; n < layout.num_nodes(); ++n) all[n] = n;
  return layout.PickByProximity(az_, all, az_aware, rr_++);
}

TxnId NdbApiNode::Begin(TableId hint_table, std::string_view hint_key) {
  const TableDef& td = cluster_.catalog().table(hint_table);
  const NodeId tc = PickTc(&td, hint_table, hint_key);
  if (tc == kNoNode) return 0;
  const TxnId txn = cluster_.NextTxnId();
  *txns_.Emplace(txn).first = TxnState{tc, false, 0};
  return txn;
}

TxnId NdbApiNode::BeginNoHint() {
  const NodeId tc = PickTc(nullptr, 0, {});
  if (tc == kNoNode) return 0;
  const TxnId txn = cluster_.NextTxnId();
  *txns_.Emplace(txn).first = TxnState{tc, false, 0};
  return txn;
}

NdbApiNode::TxnState* NdbApiNode::FindTxn(TxnId txn) {
  return txns_.Find(txn);
}

void NdbApiNode::SetTxnDeadline(TxnId txn, Nanos deadline) {
  if (TxnState* t = FindTxn(txn)) t->deadline = deadline;
}

void NdbApiNode::SetTxnTrace(TxnId txn, trace::SpanId span) {
  if (TxnState* t = FindTxn(txn)) t->span = span;
}

uint64_t NdbApiNode::RegisterOp(TxnId txn, PendingOp op) {
  const uint64_t op_id = next_op_id_++;
  op.txn = txn;
  *pending_.Emplace(op_id).first = std::move(op);
  // The local timer never outlives the op's deadline: the op fails
  // exactly at the deadline with no extra pending events.
  Nanos timeout = op_timeout_;
  if (TxnState* t = FindTxn(txn)) {
    t->inflight += 1;
    timeout = resilience::ClampToDeadline(timeout, t->deadline,
                                          cluster_.sim().now());
  }

  // The timer resolves the API node by id at fire time: if the node was
  // destroyed in the meantime, the slot is null and the timer is a no-op
  // instead of a use-after-free.
  cluster_.sim().After(timeout, [cluster = &cluster_, id = id_, op_id] {
    NdbApiNode* self = cluster->api(id);
    if (self != nullptr) self->OnOpTimeout(op_id);
  });
  return op_id;
}

void NdbApiNode::OnOpTimeout(uint64_t op_id) {
  PendingOp* p = pending_.Find(op_id);
  if (p == nullptr) return;  // already answered
  ++timeouts_;
  TxnState* t = FindTxn(p->txn);
  if (t != nullptr) t->broken = true;
  // An op that ran out of *deadline* (not the op timeout) reports
  // kDeadlineExceeded so the caller fails fast instead of retrying.
  const bool past_deadline =
      t != nullptr &&
      resilience::DeadlineExpired(t->deadline, cluster_.sim().now());
  if (past_deadline) metrics::Bump(deadline_exceeded_);
  FailOp(op_id, past_deadline ? Code::kDeadlineExceeded : Code::kTimedOut);
}

void NdbApiNode::FailOp(uint64_t op_id, Code code) {
  PendingOp* slot = pending_.Find(op_id);
  if (slot == nullptr) return;
  PendingOp op = std::move(*slot);
  pending_.Erase(op_id);
  cluster_.sim().tracer().EndSpan(op.span);
  cluster_.sim().tracer().EndSpan(op.hedge_span);
  if (TxnState* t = FindTxn(op.txn)) t->inflight -= 1;
  if (op.erase_txn) txns_.Erase(op.txn);
  if (op.read_cb) op.read_cb(code, std::nullopt);
  if (op.write_cb) op.write_cb(code);
  if (op.scan_cb) op.scan_cb(code, {});
}

void NdbApiNode::SendKeyOp(TxnId txn, KeyOpReq req, PendingOp op) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr || t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    const Code code = t == nullptr || t->broken ? Code::kAborted
                                                : Code::kUnavailable;
    if (op.read_cb) op.read_cb(code, std::nullopt);
    if (op.write_cb) op.write_cb(code);
    if (op.scan_cb) op.scan_cb(code, {});
    return;
  }
  // Fail fast before spending a network round trip on doomed work.
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    if (op.read_cb) op.read_cb(Code::kDeadlineExceeded, std::nullopt);
    if (op.write_cb) op.write_cb(Code::kDeadlineExceeded);
    if (op.scan_cb) op.scan_cb(Code::kDeadlineExceeded, {});
    return;
  }
  req.txn = txn;
  req.api = id_;
  req.deadline = t->deadline;
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, req.is_write ? "ndb.write" : "ndb.read", trace::Layer::kNdb,
      trace::Cause::kWork, host_, az_);
  req.span = op.span;
  req.op_id = RegisterOp(txn, std::move(op));
  const bool hedgeable = hedge_read_delay_ > 0 && !req.is_write &&
                         req.mode == LockMode::kReadCommitted;
  const int64_t bytes =
      cluster_.cost().msg_read_req + static_cast<int64_t>(req.value.size());
  if (hedgeable) MaybeHedgeRead(txn, req.op_id, req);
  const trace::SpanId span = req.span;
  SendToTc(txn, t->tc, bytes,
           [req = std::move(req)](NdbDatanode& n) mutable {
             n.TcKeyOp(std::move(req));
           },
           span);
}

void NdbApiNode::MaybeHedgeRead(TxnId txn, uint64_t op_id,
                                const KeyOpReq& req) {
  // Same destruction fence as the op timer: resolve by id at fire time.
  cluster_.sim().After(
      hedge_read_delay_,
      [cluster = &cluster_, id = id_, txn, op_id, req]() mutable {
        NdbApiNode* self = cluster->api(id);
        if (self != nullptr) self->HedgeReadNow(txn, op_id, std::move(req));
      });
}

void NdbApiNode::HedgeReadNow(TxnId txn, uint64_t op_id, KeyOpReq req) {
  PendingOp* p = pending_.Find(op_id);
  if (p == nullptr) return;  // answered in time: no hedge
  TxnState* t = FindTxn(txn);
  if (t == nullptr || t->broken || !cluster_.cluster_up()) return;
  // Send the same op (same op_id) to a backup replica of the
  // partition; OnOpReply's pending-op erase makes the race benign.
  auto& layout = cluster_.layout();
  const PartitionId part = layout.PartitionOf(req.table, req.key);
  NodeId alt = kNoNode;
  for (NodeId n : layout.ReplicaChain(part)) {
    if (n != t->tc && layout.alive(n)) {
      alt = n;
      break;
    }
  }
  if (alt == kNoNode) return;  // no second replica to hedge to
  p->hedge_tc = alt;
  metrics::Bump(hedges_sent_);
  const int64_t bytes = cluster_.cost().msg_read_req;
  // The duplicated work is blamed on the resilience stack (kRetry).
  const trace::SpanId hspan = cluster_.sim().tracer().StartSpan(
      req.span, "ndb.read_hedge", trace::Layer::kNdb, trace::Cause::kRetry,
      host_, az_);
  p->hedge_span = hspan;
  req.span = hspan;
  SendToTc(txn, alt, bytes,
           [hreq = std::move(req)](NdbDatanode& n) mutable {
             n.TcKeyOp(std::move(hreq));
           },
           hspan);
}

void NdbApiNode::Read(TxnId txn, TableId table, Key key, LockMode mode,
                      ReadCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.mode = mode;
  PendingOp op;
  op.read_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Insert(TxnId txn, TableId table, Key key, std::string value,
                        WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.insert_only = true;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Update(TxnId txn, TableId table, Key key, std::string value,
                        WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.must_exist = true;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Write(TxnId txn, TableId table, Key key, std::string value,
                       WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kPut;
  req.value = std::move(value);
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::Delete(TxnId txn, TableId table, Key key, WriteCb cb) {
  KeyOpReq req;
  req.table = table;
  req.key = std::move(key);
  req.is_write = true;
  req.write_type = WriteType::kDelete;
  req.must_exist = true;
  PendingOp op;
  op.write_cb = std::move(cb);
  SendKeyOp(txn, std::move(req), std::move(op));
}

void NdbApiNode::ScanPrefix(TxnId txn, TableId table, Key prefix, ScanCb cb) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr || t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    cb(t == nullptr || t->broken ? Code::kAborted : Code::kUnavailable, {});
    return;
  }
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    cb(Code::kDeadlineExceeded, {});
    return;
  }
  ScanReq req;
  req.txn = txn;
  req.api = id_;
  req.table = table;
  req.prefix = std::move(prefix);
  req.deadline = t->deadline;
  PendingOp op;
  op.scan_cb = std::move(cb);
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, "ndb.scan", trace::Layer::kNdb, trace::Cause::kWork, host_,
      az_);
  req.span = op.span;
  req.op_id = RegisterOp(txn, std::move(op));
  const trace::SpanId span = req.span;
  SendToTc(txn, t->tc, cluster_.cost().msg_scan_req,
           [req = std::move(req)](NdbDatanode& n) mutable {
             n.TcScan(std::move(req));
           },
           span);
}

void NdbApiNode::Commit(TxnId txn, WriteCb cb) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr) {
    cb(Code::kAborted);
    return;
  }
  if (t->broken || !cluster_.cluster_up() ||
      !cluster_.layout().alive(t->tc)) {
    Abort(txn);
    cb(Code::kAborted);
    return;
  }
  if (resilience::DeadlineExpired(t->deadline, cluster_.sim().now())) {
    metrics::Bump(deadline_exceeded_);
    Abort(txn);
    cb(Code::kDeadlineExceeded);
    return;
  }
  PendingOp op;
  op.write_cb = std::move(cb);
  op.erase_txn = true;  // drop txn state when the commit is answered
  op.span = cluster_.sim().tracer().StartSpan(
      t->span, "ndb.commit", trace::Layer::kNdb, trace::Cause::kWork, host_,
      az_);
  const trace::SpanId cspan = op.span;
  const uint64_t op_id = RegisterOp(txn, std::move(op));
  const NodeId tc = t->tc;
  SendToTc(txn, tc, cluster_.cost().msg_small,
           [txn, op_id, api = id_, cspan](NdbDatanode& n) {
             n.TcCommit(txn, op_id, api, cspan);
           },
           cspan);
}

void NdbApiNode::Abort(TxnId txn) {
  TxnState* t = FindTxn(txn);
  if (t == nullptr) return;
  if (cluster_.layout().alive(t->tc) && cluster_.cluster_up()) {
    SendToTc(txn, t->tc, cluster_.cost().msg_small,
             [txn](NdbDatanode& n) { n.TcAbort(txn); });
  }
  txns_.Erase(txn);
}

void NdbApiNode::OnOpReply(OpReply reply) {
  PendingOp* slot = pending_.Find(reply.op_id);
  if (slot == nullptr) return;  // late reply after timeout / hedge loss
  PendingOp op = std::move(*slot);
  pending_.Erase(reply.op_id);
  cluster_.sim().tracer().EndSpan(op.span);
  cluster_.sim().tracer().EndSpan(op.hedge_span);
  if (TxnState* t = FindTxn(op.txn)) t->inflight -= 1;
  if (op.erase_txn) txns_.Erase(op.txn);
  if (op.hedge_tc != kNoNode && reply.from == op.hedge_tc) {
    metrics::Bump(hedge_wins_);
  }

  if (op.read_cb) {
    if (reply.code == Code::kOk || reply.code == Code::kNotFound) {
      op.read_cb(reply.code == Code::kNotFound ? Code::kNotFound : Code::kOk,
                 std::move(reply.value));
    } else {
      op.read_cb(reply.code, std::nullopt);
    }
  }
  if (op.write_cb) op.write_cb(reply.code);
  if (op.scan_cb) op.scan_cb(reply.code, std::move(reply.rows));
}

}  // namespace repro::ndb
