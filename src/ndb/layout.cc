#include "ndb/layout.h"

#include <cassert>
#include <functional>

namespace repro::ndb {
namespace {

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<AzId> AssignNodeAzs(int num_nodes, int replication,
                                const std::vector<AzId>& azs) {
  assert(!azs.empty());
  assert(num_nodes % replication == 0);
  const int groups = num_nodes / replication;
  std::vector<AzId> out(num_nodes);
  for (int n = 0; n < num_nodes; ++n) {
    const int slot = n / groups;  // which replica slot of its group
    out[n] = azs[slot % azs.size()];
  }
  return out;
}

ClusterLayout::ClusterLayout(LayoutConfig config, const Catalog* catalog)
    : config_(std::move(config)), catalog_(catalog) {
  assert(config_.num_datanodes % config_.replication_factor == 0);
  assert(static_cast<int>(config_.node_az.size()) == config_.num_datanodes);
  num_groups_ = config_.num_datanodes / config_.replication_factor;
  num_partitions_ =
      num_groups_ * config_.num_ldm_threads * config_.partitions_per_ldm;
  alive_.assign(config_.num_datanodes, true);
  catchup_.assign(config_.num_datanodes,
                  std::vector<bool>(num_partitions_, false));

  replica_chain_.resize(num_partitions_);
  ldm_thread_.resize(num_partitions_);
  const int R = config_.replication_factor;
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    const int g = p % num_groups_;
    // Rotate the primary slot so primaries spread evenly within a group.
    const int rotation = (p / num_groups_) % R;
    auto& chain = replica_chain_[p];
    chain.reserve(R);
    for (int i = 0; i < R; ++i) {
      const int slot = (rotation + i) % R;
      chain.push_back(g + slot * num_groups_);
    }
    ldm_thread_[p] =
        static_cast<int>(Mix(static_cast<uint64_t>(p)) %
                         static_cast<uint64_t>(config_.num_ldm_threads));
  }
}

int ClusterLayout::alive_count() const {
  int n = 0;
  for (bool a : alive_) n += a ? 1 : 0;
  return n;
}

bool ClusterLayout::Viable() const {
  // Every node group must retain at least one alive member.
  for (int g = 0; g < num_groups_; ++g) {
    bool any = false;
    for (int i = 0; i < config_.replication_factor; ++i) {
      if (alive_[g + i * num_groups_]) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

PartitionId ClusterLayout::PartitionOf(TableId table,
                                       std::string_view row_key) const {
  const std::string_view pk = catalog_->table(table).PartitionKeyOf(row_key);
  const uint64_t h = Mix(std::hash<std::string_view>{}(pk));
  return static_cast<PartitionId>(h % static_cast<uint64_t>(num_partitions_));
}

std::vector<NodeId> ClusterLayout::ReplicaChain(TableId table,
                                                PartitionId p) const {
  std::vector<NodeId> chain = replica_chain_[p];
  if (catalog_->table(table).fully_replicated) {
    // Copy fragments on every remaining node, appended in node order.
    std::vector<bool> in_chain(config_.num_datanodes, false);
    for (NodeId n : chain) in_chain[n] = true;
    for (NodeId n = 0; n < config_.num_datanodes; ++n) {
      if (!in_chain[n]) chain.push_back(n);
    }
  }
  return chain;
}

NodeId ClusterLayout::PrimaryOf(PartitionId p) const {
  for (NodeId n : replica_chain_[p]) {
    if (alive_[n]) return n;
  }
  return kNoNode;
}

int ClusterLayout::LdmThreadOf(PartitionId p) const { return ldm_thread_[p]; }

int ClusterLayout::ProximityScore(AzId from_az, bool same_host,
                                  NodeId n) const {
  if (same_host && az_of(n) == from_az) return 0;
  if (az_of(n) == from_az) return 1;
  return 2;
}

NodeId ClusterLayout::PickByProximity(AzId from_az,
                                      const std::vector<NodeId>& candidates,
                                      bool az_aware, uint64_t tie_break,
                                      PartitionId part) const {
  if (candidates.empty()) return kNoNode;
  const auto usable = [this, part](NodeId c) {
    return part >= 0 ? serves(c, part) : alive_[c];
  };
  if (!az_aware) {
    // Classic NDB: round-robin over alive candidates in chain order.
    const size_t n = candidates.size();
    for (size_t i = 0; i < n; ++i) {
      const NodeId c = candidates[(tie_break + i) % n];
      if (usable(c)) return c;
    }
    return kNoNode;
  }
  int best_score = 3;
  std::vector<NodeId> best;
  for (NodeId c : candidates) {
    if (!usable(c)) continue;
    const int score = ProximityScore(from_az, /*same_host=*/false, c);
    if (score < best_score) {
      best_score = score;
      best.clear();
    }
    if (score == best_score) best.push_back(c);
  }
  if (best.empty()) return kNoNode;
  return best[tie_break % best.size()];
}

}  // namespace repro::ndb
