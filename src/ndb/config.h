// Tunable cost model and feature flags for the NDB substrate.
//
// CPU costs are calibrated so a 12-datanode cluster saturates in the same
// region as the paper's testbed (Figs. 5, 10, 11); message sizes are
// typical NDB signal sizes. The feature flags correspond one-to-one to
// the AZ-awareness mechanisms §IV introduces, so each can be ablated.
#pragma once

#include "util/time.h"

namespace repro::ndb {

struct CostModel {
  // Per-message costs on the RECV / SEND thread types.
  Nanos recv_per_msg = 2 * kMicrosecond;
  Nanos send_per_msg = 2 * kMicrosecond;

  // Transaction-coordinator thread costs.
  Nanos tc_begin = 2 * kMicrosecond;
  Nanos tc_route_op = 4 * kMicrosecond;       // per key operation routed
  Nanos tc_commit_row = 3 * kMicrosecond;     // per row chain commit mgmt
  Nanos tc_complete_row = 2 * kMicrosecond;

  // LDM (local data manager) thread costs.
  Nanos ldm_read = 10 * kMicrosecond;
  Nanos ldm_prepare = 16 * kMicrosecond;      // lock + stage pending write
  Nanos ldm_commit = 6 * kMicrosecond;
  Nanos ldm_complete = 2 * kMicrosecond;
  Nanos ldm_scan_base = 12 * kMicrosecond;
  Nanos ldm_scan_row = 1500;                  // 1.5 us per row returned

  // IO thread: redo-log bookkeeping per commit; the log itself is flushed
  // to disk in batches.
  Nanos io_redo_per_commit = 1 * kMicrosecond;
  int64_t redo_bytes_per_commit = 320;

  // Write-ahead journal framing and node-recovery costs.
  int64_t redo_record_overhead_bytes = 32;   // per-record on-disk header
  int64_t redo_flush_overhead_bytes = 4096;  // fsync + page pad per group commit
  Nanos replay_per_entry = 2 * kMicrosecond; // CPU to re-apply one record
  Nanos recovery_setup = 20 * kMillisecond;  // per-phase protocol setup

  // Wire sizes (payload bytes; the network adds framing).
  int64_t msg_small = 64;      // Commit/Committed/Complete/Completed/acks
  int64_t msg_read_req = 160;
  int64_t msg_scan_req = 192;
  int64_t msg_write_base = 160;  // PrepareReq excluding the row image
};

struct NdbNodeConfig {
  // Thread counts per datanode — Table II of the paper (27 CPUs).
  int ldm_threads = 12;
  int tc_threads = 7;
  int recv_threads = 3;
  int send_threads = 2;
  // REP, IO and MAIN have one thread each; REP/MAIN are mostly idle and
  // act as helpers for overloaded RECV/SEND threads (§V-D1).
  Nanos helper_backlog_threshold = 30 * kMicrosecond;

  Nanos lock_wait_timeout = 400 * kMillisecond;   // deadlock detection
  Nanos txn_inactive_timeout = 2 * kSecond;       // abandoned transactions
  Nanos heartbeat_interval = 50 * kMillisecond;
  int heartbeat_misses_for_failure = 4;
  Nanos arbitration_timeout = 150 * kMillisecond;
  Nanos gcp_interval = 500 * kMillisecond;        // global checkpoints
  Nanos redo_flush_interval = 100 * kMillisecond; // group-commit cadence
  Nanos lcp_interval = 2 * kSecond;               // local checkpoints (LCP)
  // Redo-journal segment roll size; truncation at LCP drops whole
  // flushed segments, so memory overhang is about one segment per node.
  int64_t redo_segment_bytes = 256 << 10;
  // Record per-replica redo entries so nodes and the cluster can be
  // recovered from checkpoints + redo replay (§II-B2). On by default:
  // local checkpoints truncate the journal, so the in-memory footprint
  // is bounded by the checkpoint image plus one LCP interval of log.
  bool enable_durability = true;
  // Redo backpressure: when the appended-but-unflushed journal backlog
  // exceeds this, the primary LDM refuses new prepares with
  // kResourceExhausted until the log disk catches up. Bounds journal
  // memory under a saturated or grey-slow log disk; surfaced through the
  // AIMD admission path (the code counts against availability).
  int64_t redo_stall_backlog_bytes = 4 << 20;
  // Bounded ring of per-recovery RecoveryStats kept by the cluster; long
  // restart-storm soaks evict the oldest entries past this.
  int recovery_log_cap = 512;
};

struct FeatureFlags {
  // AZ-aware TC selection at the API node (§IV-A5) and AZ-aware read
  // routing at the TC (§IV-A4). Off = classic NDB distribution-aware
  // behaviour (primary-replica oriented).
  bool az_aware = false;
  // Delay the commit ack until all replicas completed, enabling
  // consistent committed reads from backups (§IV-A3). Applies to tables
  // with the read_backup option.
  bool read_backup_commit_ack = true;
};

}  // namespace repro::ndb
