// Per-datanode write-ahead redo journal with group commit, log segments,
// and local checkpoints (the NDB REDO log + LCP analogue, §II-B2).
//
// Every write applied at a replica appends one sequence-numbered record
// stamped with the GCP epoch the transaction's coordinator assigned at
// its commit decision (transaction-atomic: all replicas of one commit
// carry the same epoch). Records accumulate in memory and reach disk in
// *group commits*: the flush timer collects everything appended since the
// previous flush into one batch and the caller charges a single disk
// write (batch bytes + an fsync overhead) to the simulated log disk;
// `durable_seqno` advances only when that write lands. A *local
// checkpoint* (LCP) folds the durable log prefix into a base row image,
// truncating fully-covered segments so the journal's memory footprint is
// bounded by the checkpoint image plus roughly one LCP interval of log.
//
// Because the cluster closes epoch E only after every transaction of
// epochs <= E has completed, records of epoch E+1 may be appended before
// E's boundary is recorded. The journal therefore never infers "is this
// record in the base image" from sequence numbers alone: every record
// carries an explicit `folded` bit set when an LCP folds it into the base,
// and replay / loss accounting / truncation all consult it. LCPs are
// per-partition (fragment LCPs, like real NDB): each fragment write folds
// only that partition's records, a partially completed LCP round still
// truncates fully-covered segments, and the checkpoint I/O is spread in
// time instead of one monolithic image write.
//
// Epoch durability is log-driven: the datanode closes epoch E when the
// cluster announces that E has completed (recording the boundary seqno),
// and E counts as durable on this node once the flushed prefix covers
// that boundary. The cluster-wide durable GCP epoch is the minimum over
// nodes — exactly "the epoch only advances when every node's log covering
// it is on disk".
//
// Replay rebuilds the committed row image deterministically: base image
// first, then every flushed unfolded record up to the requested epoch, in
// seqno order. `ReplayDigest` folds the would-be image into an
// order-sensitive FNV-1a digest without touching any store, so recovery
// can prove that two independent replays of the same journal produce
// byte-identical row states (the replay-determinism audit run on every
// recovery).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ndb/types.h"
#include "util/time.h"

namespace repro::ndb {

// Order-sensitive FNV-1a digest of a (table, key, value/tombstone) row
// stream. Used to compare replayed images for byte-identity.
class ImageDigest {
 public:
  void AddRow(TableId table, const Key& key, const std::string& value);
  uint64_t value() const { return hash_; }

 private:
  void Mix(const void* data, size_t len);
  uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

class RedoJournal {
 public:
  struct Config {
    // On-disk framing per record (type, seqno, epoch, txn, lengths).
    int64_t record_overhead_bytes = 32;
    // Per-group-commit cost: fsync + partial-page padding.
    int64_t flush_overhead_bytes = 4096;
    // Segment roll size; truncation drops whole flushed segments.
    int64_t segment_bytes = 256 << 10;
  };

  struct Record {
    int64_t seqno = 0;  // 1-based, monotonic per node, never reused
    int64_t epoch = 0;  // GCP epoch the TC assigned at commit decision
    TxnId txn = 0;
    TableId table = 0;
    Key key;
    PartitionId part = 0;
    bool deleted = false;
    bool folded = false;  // already folded into the base image by an LCP
    std::string value;
    int64_t bytes = 0;       // on-disk size incl. record overhead
    Nanos appended_at = 0;   // when the replica applied the write
  };

  struct Segment {
    int64_t first_seqno = 0;
    int64_t last_seqno = 0;  // == first-1 while empty
    int64_t bytes = 0;
    int64_t unfolded = 0;    // records not yet folded into the base
    std::vector<Record> records;
  };

  explicit RedoJournal(int num_tables) : RedoJournal(num_tables, Config()) {}
  RedoJournal(int num_tables, Config config);

  // ---- append path --------------------------------------------------
  // Appends one redo record; returns its seqno.
  int64_t Append(int64_t epoch, TxnId txn, TableId table, const Key& key,
                 PartitionId part, bool deleted, std::string value, Nanos now);
  // Bootstrap rows are durable by definition (loaded before the run):
  // they go straight into the checkpoint base image, not the log.
  void BootstrapRow(TableId table, const Key& key, const std::string& value);

  // ---- group commit -------------------------------------------------
  // Collects everything appended since the previous flush request into
  // one batch. `disk_bytes` (record bytes + flush overhead) is what the
  // caller charges to the log disk; call MarkFlushed when the write
  // lands. Returns upto_seqno == 0 when there is nothing to flush.
  struct FlushBatch {
    int64_t upto_seqno = 0;
    int64_t record_bytes = 0;
    int64_t disk_bytes = 0;
  };
  FlushBatch PrepareFlush();
  void MarkFlushed(const FlushBatch& batch);

  // Crash: the un-flushed tail (including flushes still in flight) never
  // reached disk and is lost. Bumps generation() so stale disk-write
  // completions from before the crash can be recognised and dropped.
  void DropUnflushed();

  // ---- epochs -------------------------------------------------------
  // The cluster announced that GCP epoch `epoch` has completed: every
  // record of epochs <= epoch precedes the current log end. Idempotent
  // per epoch.
  void CloseEpoch(int64_t epoch);
  // Highest closed epoch whose boundary the flushed prefix covers (or
  // the base image epoch if newer). 0 before anything is durable.
  int64_t durable_epoch() const;

  // ---- local checkpoints (fragment LCPs) ----------------------------
  // Log position an LCP round may cut at: the boundary of the cluster-
  // wide durable epoch (never beyond this node's own flushed prefix).
  // Rows of later epochs must stay in the log — folding them into the
  // base image would bake in commits a cluster recovery may need to
  // drop.
  int64_t CheckpointCutSeqno(int64_t cluster_durable_epoch) const;
  // Largest closed epoch whose boundary `cut_seqno` covers (the epoch a
  // checkpoint at that cut attests).
  int64_t EpochAtCut(int64_t cut_seqno) const;
  // Serialized size of one fragment's checkpoint write: this partition's
  // share of the base image plus its foldable log records at the cut.
  int64_t FragmentCheckpointBytes(PartitionId part, int num_partitions,
                                  int64_t cut_seqno) const;
  // The fragment's image write reached disk: fold this partition's
  // records at or below the cut into the base image and mark them folded.
  // A partially completed LCP round still truncates covered segments.
  void CompleteFragmentCheckpoint(PartitionId part, int64_t cut_seqno);
  // Every fragment of the round at `cut_seqno` is on disk: advance the
  // base seqno/epoch the whole image attests, prune closed epoch bounds,
  // truncate covered segments.
  void FinishCheckpointRound(int64_t cut_seqno, Nanos now);
  // Single-shot convenience (fold every partition at once) used by tests
  // and the whole-image adoption path.
  int64_t CheckpointBytes(int64_t cut_seqno) const;
  void CompleteCheckpoint(int64_t cut_seqno, Nanos now);

  // Node rejoin / cluster restore: replace the whole journal state with
  // an externally supplied consistent image "as of `epoch`" (the node
  // completes a checkpoint of the adopted image before serving, as real
  // NDB does during node restart). Bumps generation().
  void InstallImageBegin(int64_t epoch, Nanos now);
  void InstallImageRow(TableId table, const Key& key,
                       const std::string& value);
  void InstallImageDelete(TableId table, const Key& key);
  // Rejoin catch-up: adopts one post-cut redo record from the resync
  // source's journal, preserving its epoch/txn stamps. Adopted records
  // count as flushed (the rejoin checkpoint write charges the disk).
  void AdoptRecord(int64_t epoch, TxnId txn, TableId table, const Key& key,
                   PartitionId part, bool deleted, std::string value,
                   Nanos appended_at);
  // Records that the adopted base image may attest epochs up to `epoch`
  // for some partitions (the source had folded fragments beyond the
  // cut); a cluster recovery must never cut below this.
  void RaiseFoldedEpoch(int64_t epoch);
  // Highest epoch any fragment of the base image may contain — the floor
  // for a cluster-recovery cut involving this node.
  int64_t max_folded_epoch() const { return max_folded_epoch_; }

  // ---- replay -------------------------------------------------------
  struct ReplayPlan {
    int64_t entries = 0;      // flushed log records to re-apply
    int64_t log_bytes = 0;    // their on-disk size (log-disk read)
    int64_t image_bytes = 0;  // checkpoint base image size (disk read)
    int64_t image_rows = 0;
  };
  // What replaying up to `max_epoch` (durable prefix only) would read
  // and apply. INT64_MAX = everything this node's disks have.
  ReplayPlan PlanReplay(int64_t max_epoch) const;
  // Applies the base image then flushed unfolded records with epoch <=
  // max_epoch in seqno order. Returns the number of log records applied.
  int64_t Replay(int64_t max_epoch,
                 const std::function<void(TableId, const Key&,
                                          const std::string&)>& put,
                 const std::function<void(TableId, const Key&)>& del) const;
  // Digest of the row image Replay(max_epoch) would produce, computed on
  // a scratch image (no store involved).
  uint64_t ReplayDigest(int64_t max_epoch) const;

  // ---- loss accounting (cluster recovery reporting) ------------------
  // Records a recovery cut at `epoch` would drop: anything of a later
  // epoch, plus anything not yet flushed.
  struct LossReport {
    std::vector<TxnId> txns;      // distinct, ascending
    int64_t entries = 0;
    Nanos oldest_append = -1;     // append time of the oldest dropped record
  };
  LossReport LossBeyond(int64_t epoch) const;

  // ---- introspection / telemetry -------------------------------------
  int64_t last_seqno() const { return last_seqno_; }
  int64_t durable_seqno() const { return durable_seqno_; }
  int64_t base_seqno() const { return base_seqno_; }
  int64_t base_epoch() const { return base_epoch_; }
  int64_t base_rows() const { return base_rows_; }
  int64_t base_bytes() const { return base_bytes_; }
  Nanos last_checkpoint_at() const { return last_checkpoint_at_; }
  // Appended-but-not-yet-durable bytes (group-commit backlog). Grows
  // without bound when the log disk cannot keep up — the redo
  // backpressure stall limit bounds it.
  int64_t backlog_bytes() const;
  // Replay debt: log bytes/records not yet folded into a checkpoint —
  // what a crash right now would cost to replay (the `ndb.lcp.lag`
  // telemetry series).
  int64_t lag_bytes() const { return lag_bytes_; }
  int64_t lag_entries() const { return lag_entries_; }
  // Records currently held in memory (bounded by LCP truncation).
  int64_t live_records() const;
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  const std::deque<Segment>& segments() const { return segments_; }
  // Incremented by DropUnflushed / InstallImageBegin; lets in-flight
  // disk completions detect that the journal they flushed is gone.
  uint64_t generation() const { return generation_; }
  const Config& config() const { return config_; }

 private:
  void AppendToSegment(Record record);
  void FoldIntoBase(const Record& record);
  void TruncateCoveredSegments();
  void RecomputeLag();

  Config config_;
  std::deque<Segment> segments_;
  // Checkpoint base image: committed rows as of the folded record set.
  // (Tombstones are folded away: a deleted row is simply absent.)
  std::vector<std::map<Key, std::string>> base_;
  int64_t base_seqno_ = 0;
  int64_t base_epoch_ = 0;
  int64_t max_folded_epoch_ = 0;
  int64_t base_rows_ = 0;
  int64_t base_bytes_ = 0;
  Nanos last_checkpoint_at_ = 0;

  int64_t last_seqno_ = 0;
  int64_t durable_seqno_ = 0;
  int64_t flush_requested_seqno_ = 0;
  int64_t appended_bytes_ = 0;   // record bytes appended, cumulative
  int64_t durable_bytes_ = 0;    // record bytes known on disk, cumulative
  int64_t lag_bytes_ = 0;
  int64_t lag_entries_ = 0;
  // Closed-epoch boundaries, ascending: epoch -> last seqno of epochs <=
  // it. Pruned below the base epoch at checkpoint time.
  std::vector<std::pair<int64_t, int64_t>> epoch_bounds_;
  uint64_t generation_ = 0;
};

}  // namespace repro::ndb
