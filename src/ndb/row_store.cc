#include "ndb/row_store.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace repro::ndb {

namespace {
// Row-level debugging for deterministic replays: when $REPRO_TRACE_KEY is
// set, every state change of rows whose key contains it is printed with
// the owning node. Combined with a failing chaos seed this pinpoints
// where a row diverged across replicas. Free when unset (one null check).
bool TraceKey(const Key& key) {
  static const char* k = std::getenv("REPRO_TRACE_KEY");
  return k != nullptr && key.find(k) != Key::npos;
}
}  // namespace

RowStore::RowStore(int num_tables) : tables_(num_tables) {}

std::optional<std::string> RowStore::Read(TableId table, const Key& key,
                                          TxnId reader_txn) const {
  const auto& t = tables_[table];
  auto it = t.find(key);
  if (it == t.end()) return std::nullopt;
  const Row& row = it->second;
  if (row.has_pending && row.pending_txn == reader_txn) {
    if (row.pending_type == WriteType::kDelete) return std::nullopt;
    return row.pending_value;
  }
  return row.committed;
}

bool RowStore::Prepare(TableId table, const Key& key, WriteType type,
                       std::string value, TxnId txn, NodeId tc,
                       Nanos staged_at) {
  Row& row = tables_[table][key];
  if (TraceKey(key)) {
    std::fprintf(stderr, "[trace] store %d PREPARE %s txn=%lld tc=%d ok=%d\n",
                 debug_owner_, key.c_str(), (long long)txn, (int)tc,
                 !(row.has_pending && row.pending_txn != txn));
  }
  if (row.has_pending && row.pending_txn != txn) return false;
  row.has_pending = true;
  row.pending_txn = txn;
  row.pending_tc = tc;
  row.pending_since = staged_at;
  row.pending_type = type;
  row.pending_value = std::move(value);
  return true;
}

std::optional<RowStore::AppliedWrite> RowStore::Commit(TableId table,
                                                       const Key& key,
                                                       TxnId txn) {
  auto& t = tables_[table];
  auto it = t.find(key);
  if (TraceKey(key)) {
    std::fprintf(stderr, "[trace] store %d COMMIT %s txn=%lld applied=%d\n",
                 debug_owner_, key.c_str(), (long long)txn,
                 it != t.end() && it->second.has_pending &&
                     it->second.pending_txn == txn);
  }
  if (it == t.end()) return std::nullopt;
  Row& row = it->second;
  if (!row.has_pending || row.pending_txn != txn) return std::nullopt;
  if (row.committed) total_bytes_ -= static_cast<int64_t>(row.committed->size());
  AppliedWrite applied{row.pending_type, {}};
  if (row.pending_type == WriteType::kDelete) {
    row.committed.reset();
  } else {
    row.committed = std::move(row.pending_value);
    applied.value = *row.committed;
    total_bytes_ += static_cast<int64_t>(row.committed->size());
  }
  row.has_pending = false;
  row.pending_value.clear();
  if (!row.committed) t.erase(it);
  return applied;
}

void RowStore::Abort(TableId table, const Key& key, TxnId txn) {
  auto& t = tables_[table];
  auto it = t.find(key);
  if (TraceKey(key)) {
    std::fprintf(stderr, "[trace] store %d ABORT %s txn=%lld hit=%d\n",
                 debug_owner_, key.c_str(), (long long)txn,
                 it != t.end() && it->second.has_pending &&
                     it->second.pending_txn == txn);
  }
  if (it == t.end()) return;
  Row& row = it->second;
  if (!row.has_pending || row.pending_txn != txn) return;
  row.has_pending = false;
  row.pending_value.clear();
  if (!row.committed) t.erase(it);
}

bool RowStore::ExistsCommitted(TableId table, const Key& key) const {
  const auto& t = tables_[table];
  auto it = t.find(key);
  return it != t.end() && it->second.committed.has_value();
}

bool RowStore::HasPending(TableId table, const Key& key) const {
  const auto& t = tables_[table];
  auto it = t.find(key);
  return it != t.end() && it->second.has_pending;
}

std::vector<std::pair<Key, std::string>> RowStore::ScanPrefix(
    TableId table, const Key& prefix, TxnId reader_txn) const {
  std::vector<std::pair<Key, std::string>> out;
  const auto& t = tables_[table];
  for (auto it = t.lower_bound(prefix); it != t.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const Row& row = it->second;
    if (row.has_pending && row.pending_txn == reader_txn) {
      if (row.pending_type != WriteType::kDelete) {
        out.emplace_back(it->first, row.pending_value);
      }
    } else if (row.committed) {
      out.emplace_back(it->first, *row.committed);
    }
  }
  return out;
}

int64_t RowStore::row_count(TableId table) const {
  return static_cast<int64_t>(tables_[table].size());
}

void RowStore::Clear() {
  for (auto& t : tables_) t.clear();
  total_bytes_ = 0;
}

void RowStore::BootstrapDelete(TableId table, const Key& key) {
  auto& t = tables_[table];
  auto it = t.find(key);
  if (it == t.end()) return;
  if (it->second.committed) {
    total_bytes_ -= static_cast<int64_t>(it->second.committed->size());
  }
  t.erase(it);
}

void RowStore::ForEachCommitted(
    TableId table,
    const std::function<void(const Key&, const std::string&)>& fn) const {
  for (const auto& [key, row] : tables_[table]) {
    if (row.committed) fn(key, *row.committed);
  }
}

void RowStore::ForEachPending(
    const std::function<void(const PendingRow&)>& fn) const {
  for (size_t table = 0; table < tables_.size(); ++table) {
    for (const auto& [key, row] : tables_[table]) {
      if (row.has_pending) {
        fn(PendingRow{static_cast<TableId>(table), key, row.pending_txn,
                      row.pending_tc, row.pending_since, row.pending_type,
                      row.pending_value});
      }
    }
  }
}

void RowStore::BootstrapPut(TableId table, const Key& key,
                            std::string value) {
  if (TraceKey(key)) {
    std::fprintf(stderr, "[trace] store %d BOOTSTRAP %s\n", debug_owner_,
                 key.c_str());
  }
  Row& row = tables_[table][key];
  if (row.committed) total_bytes_ -= static_cast<int64_t>(row.committed->size());
  row.committed = std::move(value);
  total_bytes_ += static_cast<int64_t>(row.committed->size());
}

}  // namespace repro::ndb
