// Table catalog and the two AZ-awareness table options the paper adds.
//
// `Read Backup` lets read-committed reads be served consistently from
// backup replicas (the commit protocol delays the client ack until every
// replica has completed). `Fully Replicated` keeps a copy of every
// partition on every datanode, trading slower writes for AZ-local reads
// of small hot tables. (§IV-A3)
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "ndb/types.h"

namespace repro::ndb {

// How the partition key (the distribution-aware-transaction hint) is
// derived from a row key.
enum class PartKeyRule {
  kWholeKey,           // partition key == row key
  kPrefixBeforeSlash,  // e.g. inode keys "parentId/name" hash by parentId,
                       // which keeps a directory's children in one
                       // partition (HopsFS's ADP scheme)
};

struct TableDef {
  std::string name;
  PartKeyRule part_key = PartKeyRule::kWholeKey;
  bool read_backup = false;
  bool fully_replicated = false;

  std::string_view PartitionKeyOf(std::string_view row_key) const {
    if (part_key == PartKeyRule::kPrefixBeforeSlash) {
      const size_t slash = row_key.find('/');
      if (slash != std::string_view::npos) return row_key.substr(0, slash);
    }
    return row_key;
  }
};

class Catalog {
 public:
  TableId AddTable(TableDef def) {
    tables_.push_back(std::move(def));
    return static_cast<TableId>(tables_.size()) - 1;
  }

  const TableDef& table(TableId id) const {
    assert(id >= 0 && id < static_cast<TableId>(tables_.size()));
    return tables_[id];
  }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  // Flips Read Backup on every table — what HopsFS-CL does to keep reads
  // AZ-local (§IV-A5 end).
  void EnableReadBackupEverywhere() {
    for (auto& t : tables_) t.read_backup = true;
  }

 private:
  std::vector<TableDef> tables_;
};

}  // namespace repro::ndb
