#include "ndb/types.h"

namespace repro::ndb {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kReadCommitted: return "READ_COMMITTED";
    case LockMode::kShared: return "SHARED";
    case LockMode::kExclusive: return "EXCLUSIVE";
  }
  return "?";
}

}  // namespace repro::ndb
