// Row-level lock table (strict two-phase locking, §II-B2).
//
// Locks are only ever taken on the primary replica first (NDB's deadlock-
// avoidance ordering); backups are locked implicitly by the prepare chain.
// Shared locks coexist; exclusive locks are exclusive; a sole shared
// holder may upgrade in place. Waiters are granted FIFO and time out after
// TransactionDeadlockDetectionTimeout, which breaks deadlocks by aborting
// one transaction — the aborted file-system operation is retried by the
// client (HopsFS's backpressure mechanism).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ndb/types.h"
#include "sim/engine.h"
#include "util/status.h"

namespace repro::ndb {

class LockManager {
 public:
  LockManager(Simulation& sim, Nanos wait_timeout);

  // Grants the lock now or later via `granted`; on timeout `granted` is
  // invoked with kTimedOut and the request is dropped.
  void Acquire(TxnId txn, TableId table, const Key& key, LockMode mode,
               std::function<void(Status)> granted);

  // Releases one row lock held by txn (no-op if not held).
  void Release(TxnId txn, TableId table, const Key& key);

  // Releases everything txn holds and cancels its waiting requests.
  void ReleaseAll(TxnId txn);

  bool IsLocked(TableId table, const Key& key) const;
  int64_t total_grants() const { return total_grants_; }
  int64_t total_timeouts() const { return total_timeouts_; }
  int64_t total_waits() const { return total_waits_; }   // granted after queueing
  Nanos total_wait_ns() const { return total_wait_ns_; }

 private:
  struct LockKey {
    TableId table;
    Key key;
    bool operator==(const LockKey&) const = default;
  };
  struct LockKeyHash {
    size_t operator()(const LockKey& k) const {
      return std::hash<std::string>{}(k.key) * 31 +
             std::hash<int>{}(k.table);
    }
  };
  struct Waiter {
    uint64_t id;
    TxnId txn;
    LockMode mode;
    std::function<void(Status)> granted;
    Nanos enqueued = 0;
  };
  struct Entry {
    // Holders: multiple for shared, one for exclusive.
    std::vector<TxnId> holders;
    bool exclusive = false;
    std::deque<Waiter> waiters;
  };

  void GrantWaiters(const LockKey& lk);
  bool TryGrant(Entry& entry, TxnId txn, LockMode mode);
  void EraseIfIdle(const LockKey& lk);

  Simulation& sim_;
  Nanos wait_timeout_;
  uint64_t next_waiter_id_ = 1;
  std::unordered_map<LockKey, Entry, LockKeyHash> locks_;
  std::unordered_map<TxnId, std::vector<LockKey>> held_by_txn_;
  int64_t total_grants_ = 0;
  int64_t total_timeouts_ = 0;
  int64_t total_waits_ = 0;
  Nanos total_wait_ns_ = 0;
};

}  // namespace repro::ndb
