// An NDB datanode: transaction coordinator (TC) + local data manager (LDM).
//
// Each datanode models the multi-threaded architecture of Table II: 12 LDM
// threads own table partitions, 7 TC threads coordinate transactions, 3
// RECV / 2 SEND threads handle the wire, and the REP/IO/MAIN singles act
// as helpers when RECV/SEND back up (the effect behind Fig. 11).
//
// The commit protocol is the paper's linear 2PC (Fig. 2):
//
//   execute(write):  TC --Prepare--> primary --Prepare--> B --> B'
//                    B' --Prepared--> TC            (locks taken at primary)
//   commit:          TC --Commit--> B' --> B --> primary
//                    primary applies + unlocks, --Committed--> TC
//   complete:        TC --Complete--> each backup (applies its pending)
//                    backup --Completed--> TC
//
// Classic NDB acks the client after all Committed messages; backups are
// only up to date after Complete, hence committed reads are redirected to
// the primary. With the Read Backup table option (§IV-A3) the TC delays
// the ack until all Completed messages have arrived, making every replica
// safe for committed reads — the enabler for AZ-local reads.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndb/config.h"
#include "ndb/lock_manager.h"
#include "sim/callback.h"
#include "ndb/redo_journal.h"
#include "ndb/row_store.h"
#include "ndb/schema.h"
#include "ndb/types.h"
#include "sim/network.h"
#include "sim/resources.h"
#include "util/status.h"

namespace repro::ndb {

class NdbCluster;
class NdbApiNode;

// ---- Wire messages ------------------------------------------------------

// API -> TC: key operation.
struct KeyOpReq {
  TxnId txn = 0;
  ApiNodeId api = -1;
  uint64_t op_id = 0;
  TableId table = 0;
  Key key;
  LockMode mode = LockMode::kReadCommitted;  // reads
  bool is_write = false;
  WriteType write_type = WriteType::kPut;
  bool insert_only = false;   // fail with kAlreadyExists if row exists
  bool must_exist = false;    // fail with kNotFound (delete/update strict)
  std::string value;
  // Absolute deadline propagated from the client op (0 = none). The TC
  // rejects work whose deadline already passed instead of routing it.
  Nanos deadline = 0;
  // Trace span of this operation at the API node (0 = not sampled); TC
  // and LDM work on the op parents its spans here.
  trace::SpanId span = 0;
};

// API -> TC: partition-pruned prefix scan (directory listing).
struct ScanReq {
  TxnId txn = 0;
  ApiNodeId api = -1;
  uint64_t op_id = 0;
  TableId table = 0;
  Key prefix;
  Nanos deadline = 0;       // see KeyOpReq::deadline
  trace::SpanId span = 0;   // see KeyOpReq::span
};

// TC/LDM -> API: completion of one operation (or of commit/abort).
struct OpReply {
  TxnId txn = 0;
  uint64_t op_id = 0;
  Code code = Code::kOk;
  std::optional<std::string> value;
  std::vector<std::pair<Key, std::string>> rows;  // scans
  // Responding datanode, stamped by SendToApi: lets the API node tell a
  // hedged read's winner from the original.
  NodeId from = kNoNode;
};

// Chain messages (Fig. 2).
struct PrepareReq {
  TxnId txn = 0;
  NodeId tc = kNoNode;
  uint64_t op_id = 0;
  ApiNodeId api = -1;
  TableId table = 0;
  Key key;
  PartitionId part = 0;
  WriteType type = WriteType::kPut;
  bool insert_only = false;
  bool must_exist = false;
  std::string value;
  std::vector<NodeId> chain;  // primary first
  int pos = 0;                // index of the receiving replica
  int busy_retries = 0;       // waits on a predecessor's pending write
  trace::SpanId span = 0;     // op span the chain hops trace under
};

struct CommitChainReq {
  TxnId txn = 0;
  NodeId tc = kNoNode;
  TableId table = 0;
  Key key;
  PartitionId part = 0;
  // GCP epoch the TC assigned the whole transaction at commit decision
  // time; every replica stamps its redo record with it, so one commit's
  // records can never straddle a GCP tick.
  int64_t epoch = 0;
  std::vector<NodeId> chain;
  int pos = 0;  // traverses from chain.size()-1 down to 0 (the primary)
  trace::SpanId span = 0;  // the txn's ndb.commit span
};

struct CompleteReq {
  TxnId txn = 0;
  NodeId tc = kNoNode;
  TableId table = 0;
  Key key;
  PartitionId part = 0;
  int64_t epoch = 0;  // see CommitChainReq::epoch
  bool is_primary = false;
  trace::SpanId span = 0;  // the txn's ndb.commit span
};

// ---- Datanode -----------------------------------------------------------

class NdbDatanode {
 public:
  NdbDatanode(NdbCluster& cluster, NodeId id, HostId host);

  NodeId id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const;
  bool alive() const { return alive_; }

  // Grey failure injection: degrades this node's compute and disk service
  // times without killing it — heartbeats still flow (slowly), so the
  // failure detector does NOT evict the node and the cluster limps along
  // with a straggler. Factors of 1.0 restore normal speed.
  void SetGreySlowdown(double cpu_factor, double disk_factor);
  bool grey_degraded() const { return grey_degraded_; }
  // Grey-slow / saturated redo log disk only: the data disk and CPUs stay
  // at full speed, so the node limps exactly where real deployments do —
  // group commits stretch, the unflushed backlog grows, and redo
  // backpressure kicks in. 1.0 restores normal speed.
  void SetLogDiskSlowdown(double factor);
  bool log_disk_slow() const { return log_disk_slow_; }

  // TEST-ONLY fault hook: when set, this node's TC acknowledges write
  // operations as kOk without ever staging them on any replica — a
  // deliberate lost-acked-write bug used to prove the chaos harness's
  // durability invariant actually detects violations. Never set outside
  // tests/benchmarks.
  void set_test_lose_acked_writes(bool v) { test_lose_acked_writes_ = v; }

  // Graceful shutdown (lost arbitration / operator stop): stops serving.
  void Shutdown();
  // Brings a stopped node back into service (node recovery; data must
  // already have been resynchronised by the cluster).
  void Revive();
  // True if any transaction this node coordinates touches a partition of
  // the given node group (used to fence node rejoin).
  bool HasTxnTouchingGroup(int group) const;
  // Same, for a single partition (fences streaming per-partition
  // catch-up during node rejoin).
  bool HasTxnTouchingPartition(PartitionId part) const;

  // -- entry points (invoked after RECV-thread queueing) --
  void TcKeyOp(KeyOpReq req);
  void TcScan(ScanReq req);
  void TcCommit(TxnId txn, uint64_t op_id, ApiNodeId api,
                trace::SpanId span = 0);
  void TcAbort(TxnId txn);

  void LdmCommittedRead(KeyOpReq req, int replica_idx);
  void LdmLockedRead(PrepareReq probe);  // reuses chain fields for routing
  void LdmPrepare(PrepareReq req);
  void LdmCommitChain(CommitChainReq req);
  void LdmComplete(CompleteReq req);
  void LdmAbortRow(TxnId txn, TableId table, Key key, PartitionId part);
  // Releases a shared/exclusive read lock without touching pending writes
  // (used at the commit point for rows that were only read).
  void LdmUnlock(TxnId txn, TableId table, Key key, PartitionId part);
  void LdmScanExec(ScanReq req, PartitionId part, int replica_idx);

  // TC-side protocol confirmations.
  void TcLockedReadResult(TxnId txn, uint64_t op_id, Code code,
                          std::optional<std::string> value, TableId table,
                          Key key, PartitionId part, trace::SpanId span = 0);
  void TcPrepared(TxnId txn, uint64_t op_id, Code code, TableId table,
                  Key key, PartitionId part, std::vector<NodeId> chain,
                  trace::SpanId span = 0);
  void TcCommitted(TxnId txn);
  void TcCompleted(TxnId txn);

  // Failure handling: aborts transactions that involve the given node.
  void AbortTxnsInvolving(NodeId failed);
  // Take-over support: surrenders every row touched by transactions this
  // node coordinates, so survivors can release locks and pending writes
  // after this coordinator dies. Clears the coordinator state.
  struct TakeoverRow {
    TxnId txn;
    TableId table;
    Key key;
    PartitionId part;
    NodeId node;
    // True if the coordinator had passed its commit point: take-over must
    // roll the row forward (apply the pending write), not back — the
    // primary may already have applied, and aborting the backups' pending
    // copies would leave the replicas diverged forever.
    bool commit_forward = false;
    // The dead coordinator's commit-decision epoch (commit_forward rows):
    // roll-forward redo records must carry the same epoch the already-
    // applied replicas logged, or the take-over itself would straddle.
    int64_t epoch = 0;
  };
  std::vector<TakeoverRow> DrainTxnRowsForTakeover();
  // Applies one drained row on a surviving replica: commit or abort the
  // pending write per `commit_forward`, release the row lock.
  void ResolveTakenOverRow(const TakeoverRow& row);
  // Aborts transactions whose API client is considered gone, and reaps
  // pending writes whose coordinating transaction no longer exists.
  void SweepInactiveTxns();
  // Whether this node (as TC) still tracks the transaction.
  bool HasActiveTxn(TxnId txn) const { return txns_.count(txn) > 0; }

  RowStore& store() { return store_; }
  LockManager& locks() { return locks_; }
  Disk& disk() { return *disk_; }
  // Dedicated redo-log device: group commits and recovery log reads queue
  // here, so a saturated data disk cannot stall the redo path (and vice
  // versa) — and a slow log disk is a distinct, injectable failure mode.
  Disk& log_disk() { return *log_disk_; }

  // ---- durability: write-ahead redo journal (enable_durability) ----
  RedoJournal& journal() { return journal_; }
  const RedoJournal& journal() const { return journal_; }
  // The cluster announced a new GCP epoch: commit decisions from now on
  // are stamped with it. Deliberately does NOT close the previous epoch —
  // transactions that took their commit decision under it may still have
  // chain messages in flight, and their redo records must land inside the
  // epoch. The cluster closes epochs separately (CloseGcpEpoch) once no
  // committing transaction at or below them remains.
  void set_gcp_epoch(int64_t epoch) { gcp_epoch_ = epoch; }
  int64_t gcp_epoch() const { return gcp_epoch_; }
  // The cluster determined every transaction of epochs <= epoch has
  // finished committing: record the epoch boundary in the journal.
  void CloseGcpEpoch(int64_t epoch) {
    if (cluster_has_durability_) journal_.CloseEpoch(epoch);
  }
  // True if this node coordinates a transaction that took its commit
  // decision at or below `epoch` and has not finished its commit/complete
  // chain — the cluster must not close the epoch yet.
  bool HasCommittingTxnAtOrBelow(int64_t epoch) const;
  // Highest GCP epoch this node's flushed log + checkpoint cover.
  int64_t durable_gcp_epoch() const { return journal_.durable_epoch(); }
  // Starts a local checkpoint if one is due: captures the image at the
  // cluster-durable epoch boundary, charges the image write to the disk,
  // then truncates the journal. No-op while one is already running.
  void StartLocalCheckpoint(int64_t cluster_durable_epoch);
  bool lcp_in_progress() const { return lcp_inflight_; }
  // Bootstrap data is durable by definition (loaded before the run).
  void LogBootstrap(TableId table, const Key& key, const std::string& value) {
    if (cluster_has_durability_) journal_.BootstrapRow(table, key, value);
  }
  void set_cluster_has_durability(bool v) { cluster_has_durability_ = v; }

  // ---- node recovery state machine (down -> replaying -> resyncing ->
  // serving), driven by NdbCluster::RestartDatanode ----
  enum class RecoveryPhase { kServing, kDown, kReplaying, kResyncing };
  RecoveryPhase recovery_phase() const { return recovery_phase_; }
  bool recovering() const {
    return recovery_phase_ == RecoveryPhase::kReplaying ||
           recovery_phase_ == RecoveryPhase::kResyncing;
  }
  // Bumped whenever a crash/install invalidates in-flight recovery or
  // flush continuations; they compare generations and bail when stale.
  uint64_t recovery_generation() const { return recovery_gen_; }
  void BeginRecovery();
  void SetRecoveryPhase(RecoveryPhase phase) { recovery_phase_ = phase; }

  // Replays checkpoint + durable log (epoch <= max_epoch) into the row
  // store, auditing that two independent replays produce byte-identical
  // images and that exactly the planned durable prefix was applied.
  struct ReplayResult {
    int64_t entries = 0;
    uint64_t digest = 0;
    bool deterministic = false;  // replay-twice digests agreed
    bool covered = false;        // applied == planned durable entries
  };
  ReplayResult ReplayFromJournal(int64_t max_epoch);
  // Collapses the journal onto the store's current committed image "as
  // of `epoch`" — the checkpoint a restarting node completes after
  // adopting the resync image, before it serves again.
  void CheckpointAdoptedImage(int64_t epoch);
  // Epoch-filtered journal adoption during node rejoin: rebuilds this
  // node's journal from the resync source's, with the base image cut
  // exactly at `cut_epoch` (the cluster-durable epoch) and everything
  // beyond it re-adopted as ordinary log records. The rejoined node can
  // therefore never smuggle post-durable commits into an immediately
  // following cluster recovery: its base attests cut_epoch, and the
  // fresher rows sit in the log where a recovery cut drops them.
  struct AdoptResult {
    int64_t image_bytes = 0;  // base image write (data disk)
    int64_t tail_bytes = 0;   // adopted post-cut records (log disk)
  };
  AdoptResult AdoptJournalFrom(const NdbDatanode& source, int64_t cut_epoch,
                               int64_t cluster_closed_epoch, Nanos now);
  // Order-sensitive digest of the committed row image.
  uint64_t DigestStore() const;

  // ---- streaming catch-up (serve reads mid-resync) ----
  // While rejoining, a node accepts LDM traffic (committed reads for
  // already-resynced partitions, and backup chain hops so resynced
  // partitions stay fresh) before it is layout-alive again.
  void SetCatchupAccepting(bool v) { catchup_accepting_ = v; }
  bool catchup_accepting() const { return catchup_accepting_; }
  // Committed reads this node served while not yet fully rejoined.
  int64_t catchup_reads_served() const { return catchup_reads_served_; }

  // Cumulative time the redo backlog spent above the stall limit (the
  // `ndb.redo.stall_ns` telemetry series; includes an ongoing stall).
  Nanos redo_stall_ns() const;

  // -- infrastructure used by the cluster --
  void ReceiveMsg(SmallFn handle);
  // `span` != 0 wraps the hop (SEND-thread queue + wire) in a network
  // span under it; local delivery (dst == this node) records nothing.
  void SendToNode(NodeId dst, int64_t bytes,
                  SmallCall<void(NdbDatanode&)> fn,
                  trace::SpanId span = 0);
  void SendToApi(ApiNodeId api, int64_t bytes, OpReply reply,
                 trace::SpanId span = 0);
  // Run* submit the closure as-is: the caller's closure body must begin
  // with its own alive_/accepting() re-check (the old allocation-heavy
  // liveness wrappers are gone; see RunTc in datanode.cc).
  Booking RunTc(Nanos cost, SmallFn fn);
  Booking RunLdm(PartitionId part, Nanos cost, SmallFn fn);
  void RunIo(Nanos cost, SmallFn fn);
  void FlushRedo();

  // Thread pools, exposed for utilisation reporting (Fig. 11).
  const ThreadPool& ldm_pool() const { return *ldm_; }
  const ThreadPool& tc_pool() const { return *tc_; }
  const ThreadPool& recv_pool() const { return *recv_; }
  const ThreadPool& send_pool() const { return *send_; }
  const ThreadPool& rep_pool() const { return *rep_; }
  const ThreadPool& io_pool() const { return *io_; }
  const ThreadPool& main_pool() const { return *main_; }
  void ResetStats();
  int64_t active_txns() const { return static_cast<int64_t>(txns_.size()); }

  // Protocol message counters (validated against Fig. 2 by tests).
  struct ProtocolStats {
    int64_t prepares = 0;         // LdmPrepare executions
    int64_t commit_hops = 0;      // LdmCommitChain executions
    int64_t completes = 0;        // LdmComplete executions
    int64_t commit_redrives = 0;  // stalled commit/complete re-drives
    int64_t committed_reads = 0;  // LdmCommittedRead executions
    int64_t locked_reads = 0;     // LdmLockedRead executions
    int64_t scans = 0;
  };
  const ProtocolStats& protocol_stats() const { return proto_stats_; }

 private:
  struct TcTxn {
    ApiNodeId api = -1;
    bool delay_ack = false;
    bool committing = false;
    bool aborted = false;
    // GCP epoch assigned atomically at the commit decision; 0 until then.
    int64_t commit_epoch = 0;
    struct WriteRow {
      TableId table;
      Key key;
      PartitionId part;
      std::vector<NodeId> chain;
    };
    std::vector<WriteRow> writes;
    // Partitions with a prepare chain launched but not yet acknowledged.
    // `writes` is only recorded once the whole chain has prepared, so a
    // mid-chain transaction is invisible through it — the restart fence
    // (HasTxnTouchingGroup) must see these too or it can adopt a peer
    // image that predates a write the chain is about to commit.
    std::vector<PartitionId> inflight_parts;
    struct HeldLock {
      TableId table;
      Key key;
      PartitionId part;
      NodeId node;
    };
    std::vector<HeldLock> read_locks;
    int pending_commits = 0;
    int pending_completes = 0;
    uint64_t commit_op_id = 0;
    trace::SpanId commit_span = 0;  // ndb.commit span (0 = unsampled)
    Nanos last_activity = 0;
  };

  TcTxn& Txn(TxnId txn, ApiNodeId api);
  void Touch(TcTxn& t);
  // Chooses the replica that serves a committed read (§IV-A4 routing).
  NodeId RouteCommittedRead(TableId table, PartitionId part,
                            int* replica_idx);
  // Stages the primary's pending write under the already-held row lock,
  // waiting out a previous chain's pending write if the primary role
  // moved (failover or catch-up rejoin).
  void LdmPrimaryStage(PrepareReq req);
  void StartCompletePhase(TxnId txn, TcTxn& t);
  void RedriveStalledCommit(TxnId txn, TcTxn& t);
  void FinishCommit(TxnId txn, TcTxn& t);
  void AbortTxnInternal(TxnId txn, TcTxn& t, bool notify_api, Code code);
  void ForwardPrepare(PrepareReq req);
  // Legacy cost-only redo accounting for durability-off clusters (the
  // journal tracks real record bytes when durability is on).
  void AccountRedo();
  // Emits queue/service spans for a thread-pool booking under `parent`
  // (no-op when the op is unsampled). `what` names the span: "<what>" for
  // the service slice, "<what>.queue" for any wait before it.
  void TraceCpu(trace::SpanId parent, const char* what, const Booking& b);

  NdbCluster& cluster_;
  NodeId id_;
  HostId host_;
  bool alive_ = true;

  std::unique_ptr<ThreadPool> ldm_, tc_, recv_, send_, rep_, io_, main_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<Disk> log_disk_;
  RowStore store_;
  LockManager locks_;

  void LogRedo(int64_t epoch, PartitionId part, TxnId txn, TableId table,
               const Key& key,
               const std::optional<RowStore::AppliedWrite>& applied);
  // Transitions the stall clock when the backlog crosses the limit;
  // called after every journal append and flush completion.
  void UpdateRedoStallAccounting();
  // Accepts LDM-side traffic: fully alive, or rejoining with streaming
  // catch-up enabled (reads/chain hops for resynced partitions).
  bool accepting() const { return alive_ || catchup_accepting_; }

  std::unordered_map<TxnId, TcTxn> txns_;
  uint64_t rr_counter_ = 0;      // proximity tie-break round robin
  int64_t redo_pending_bytes_ = 0;
  ProtocolStats proto_stats_;
  RedoJournal journal_;
  int64_t gcp_epoch_ = 0;
  RecoveryPhase recovery_phase_ = RecoveryPhase::kServing;
  uint64_t recovery_gen_ = 0;
  bool lcp_inflight_ = false;
  bool cluster_has_durability_ = false;
  bool grey_degraded_ = false;
  bool log_disk_slow_ = false;
  bool test_lose_acked_writes_ = false;
  bool catchup_accepting_ = false;
  int64_t catchup_reads_served_ = 0;
  // Redo backpressure stall clock (see redo_stall_ns()).
  bool redo_stalled_ = false;
  Nanos redo_stall_since_ = 0;
  Nanos redo_stall_accum_ = 0;
};

}  // namespace repro::ndb
