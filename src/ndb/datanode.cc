#include "ndb/datanode.h"

#include <cassert>
#include <utility>

#include "ndb/client.h"
#include "ndb/cluster.h"
#include "prof/profiler.h"
#include "resilience/deadline.h"
#include "util/logging.h"

namespace repro::ndb {

namespace {
constexpr const char* kLog = "ndb.dn";
}

namespace {
RedoJournal::Config JournalConfig(const NdbCluster& cluster) {
  RedoJournal::Config jc;
  jc.record_overhead_bytes = cluster.cost().redo_record_overhead_bytes;
  jc.flush_overhead_bytes = cluster.cost().redo_flush_overhead_bytes;
  jc.segment_bytes = cluster.node_config().redo_segment_bytes;
  return jc;
}
}  // namespace

NdbDatanode::NdbDatanode(NdbCluster& cluster, NodeId id, HostId host)
    : cluster_(cluster), id_(id), host_(host),
      store_(cluster.catalog().num_tables()),
      locks_(cluster.sim(), cluster.node_config().lock_wait_timeout),
      journal_(cluster.catalog().num_tables(), JournalConfig(cluster)) {
  cluster_has_durability_ = cluster.node_config().enable_durability;
  store_.set_debug_owner(id_);
  auto& sim = cluster_.sim();
  const auto& nc = cluster_.node_config();
  const auto name = [this](const char* pool) {
    return StrFormat("ndb%d.%s", id_, pool);
  };
  ldm_ = std::make_unique<ThreadPool>(sim, name("ldm"), nc.ldm_threads);
  tc_ = std::make_unique<ThreadPool>(sim, name("tc"), nc.tc_threads);
  recv_ = std::make_unique<ThreadPool>(sim, name("recv"), nc.recv_threads);
  send_ = std::make_unique<ThreadPool>(sim, name("send"), nc.send_threads);
  rep_ = std::make_unique<ThreadPool>(sim, name("rep"), 1);
  io_ = std::make_unique<ThreadPool>(sim, name("io"), 1);
  main_ = std::make_unique<ThreadPool>(sim, name("main"), 1);
  disk_ = std::make_unique<Disk>(sim, name("disk"));
  log_disk_ = std::make_unique<Disk>(sim, name("logdisk"));
}

AzId NdbDatanode::az() const { return cluster_.layout().az_of(id_); }

void NdbDatanode::SetGreySlowdown(double cpu_factor, double disk_factor) {
  grey_degraded_ = cpu_factor != 1.0 || disk_factor != 1.0;
  for (ThreadPool* pool :
       {ldm_.get(), tc_.get(), recv_.get(), send_.get(), rep_.get(),
        io_.get(), main_.get()}) {
    pool->set_slowdown(cpu_factor);
  }
  disk_->set_slowdown(disk_factor);
  log_disk_->set_slowdown(disk_factor);
  if (grey_degraded_) {
    RLOG_INFO(kLog, "datanode %d grey-degraded (cpu x%.1f, disk x%.1f)",
              id_, cpu_factor, disk_factor);
  } else {
    RLOG_INFO(kLog, "datanode %d grey degradation cleared", id_);
  }
}

void NdbDatanode::SetLogDiskSlowdown(double factor) {
  log_disk_slow_ = factor != 1.0;
  log_disk_->set_slowdown(factor);
  if (log_disk_slow_) {
    RLOG_INFO(kLog, "datanode %d redo log disk degraded (x%.1f)", id_,
              factor);
  } else {
    RLOG_INFO(kLog, "datanode %d redo log disk restored", id_);
  }
}

void NdbDatanode::Shutdown() {
  // A shutdown mid-recovery must still run: it aborts the recovery (the
  // generation bump invalidates its continuations) and drops whatever
  // the interrupted replay had not made durable.
  if (!alive_ && !recovering() && !catchup_accepting_) return;
  alive_ = false;
  catchup_accepting_ = false;
  recovery_phase_ = RecoveryPhase::kDown;
  ++recovery_gen_;
  lcp_inflight_ = false;
  txns_.clear();
  // Crash semantics: the un-flushed journal tail never reached disk.
  journal_.DropUnflushed();
  // Settle the redo stall clock: the backlog died with the node.
  if (redo_stalled_) {
    redo_stall_accum_ += cluster_.sim().now() - redo_stall_since_;
    redo_stalled_ = false;
  }
  RLOG_INFO(kLog, "datanode %d shutting down", id_);
}

void NdbDatanode::Revive() {
  alive_ = true;
  catchup_accepting_ = false;
  recovery_phase_ = RecoveryPhase::kServing;
  redo_pending_bytes_ = 0;
  RLOG_INFO(kLog, "datanode %d rejoined", id_);
}

void NdbDatanode::BeginRecovery() {
  recovery_phase_ = RecoveryPhase::kReplaying;
  ++recovery_gen_;
  catchup_reads_served_ = 0;  // per-recovery counter
}

bool NdbDatanode::HasTxnTouchingGroup(int group) const {
  const int groups = cluster_.layout().num_groups();
  for (const auto& [txn, t] : txns_) {
    for (const auto& w : t.writes) {
      if (w.part % groups == group) return true;
    }
    for (PartitionId p : t.inflight_parts) {
      if (p % groups == group) return true;
    }
    for (const auto& rl : t.read_locks) {
      if (rl.part % groups == group) return true;
    }
  }
  return false;
}

bool NdbDatanode::HasTxnTouchingPartition(PartitionId part) const {
  for (const auto& [txn, t] : txns_) {
    for (const auto& w : t.writes) {
      if (w.part == part) return true;
    }
    for (PartitionId p : t.inflight_parts) {
      if (p == part) return true;
    }
    for (const auto& rl : t.read_locks) {
      if (rl.part == part) return true;
    }
  }
  return false;
}

bool NdbDatanode::HasCommittingTxnAtOrBelow(int64_t epoch) const {
  for (const auto& [txn, t] : txns_) {
    if (t.committing && !t.aborted && t.commit_epoch != 0 &&
        t.commit_epoch <= epoch) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Infrastructure
// ---------------------------------------------------------------------------

void NdbDatanode::ReceiveMsg(SmallFn handle) {
  if (!accepting()) return;
  const auto& cost = cluster_.cost();
  const auto& nc = cluster_.node_config();
  // Idle singles (REP, then MAIN) help overloaded receive threads —
  // the behaviour behind the high REP utilisation in Fig. 11.
  ThreadPool* pool = recv_.get();
  if (recv_->Backlog() > nc.helper_backlog_threshold) {
    if (rep_->Backlog() < recv_->Backlog()) {
      pool = rep_.get();
    } else if (main_->Backlog() < recv_->Backlog()) {
      pool = main_.get();
    }
  }
  pool->Submit(cost.recv_per_msg, [this, handle = std::move(handle)]() mutable {
    if (accepting()) handle();
  });
}

void NdbDatanode::SendToNode(NodeId dst, int64_t bytes,
                             SmallCall<void(NdbDatanode&)> fn,
                             trace::SpanId span) {
  if (!accepting()) return;
  if (dst == id_) {
    // In-process signal between the TC and LDM blocks of this node.
    fn(*this);
    return;
  }
  const auto& cost = cluster_.cost();
  const auto& nc = cluster_.node_config();
  ThreadPool* pool = send_.get();
  if (send_->Backlog() > nc.helper_backlog_threshold &&
      rep_->Backlog() < send_->Backlog()) {
    pool = rep_.get();
  }
  const AzId dst_az = cluster_.layout().az_of(dst);
  const trace::SpanId hop = cluster_.tracer().StartSpan(
      span, "net.hop", trace::Layer::kNdb, trace::NetCause(az(), dst_az),
      host_, az(), dst_az);
  pool->Submit(cost.send_per_msg, [this, dst, bytes, hop,
                                   fn = std::move(fn)]() mutable {
    NdbDatanode& peer = cluster_.datanode(dst);
    cluster_.network().Send(
        host_, peer.host(), bytes,
        [this, &peer, hop, fn = std::move(fn)]() mutable {
          cluster_.tracer().EndSpan(hop);
          peer.ReceiveMsg([&peer, fn = std::move(fn)]() mutable { fn(peer); });
        });
  });
}

void NdbDatanode::SendToApi(ApiNodeId api, int64_t bytes, OpReply reply,
                            trace::SpanId span) {
  if (!accepting()) return;
  reply.from = id_;  // hedged-read win attribution (see OpReply::from)
  const auto& cost = cluster_.cost();
  NdbApiNode* dst = cluster_.api(api);
  const trace::SpanId hop =
      dst == nullptr ? 0
                     : cluster_.tracer().StartSpan(
                           span, "net.reply", trace::Layer::kNdb,
                           trace::NetCause(az(), dst->az()), host_, az(),
                           dst->az());
  send_->Submit(cost.send_per_msg, [this, api, bytes, hop,
                                    reply = std::move(reply)]() mutable {
    NdbApiNode* a = cluster_.api(api);
    if (a == nullptr) return;
    // Re-resolve at delivery time: the API node can be destroyed while
    // the reply is in flight, and its slot is nulled on unregister.
    cluster_.network().Send(host_, a->host(), bytes,
                            [this, api, hop,
                             reply = std::move(reply)]() mutable {
                              cluster_.tracer().EndSpan(hop);
                              NdbApiNode* dst2 = cluster_.api(api);
                              if (dst2 != nullptr) {
                                dst2->OnOpReply(std::move(reply));
                              }
                            });
  });
}

Booking NdbDatanode::RunTc(Nanos cost, SmallFn fn) {
  // No liveness wrapper here: every submitted closure re-checks alive_
  // itself before touching state, so the submission stays allocation-free
  // for closures that fit the SmallFn inline buffer.
  if (!alive_) return Booking{};
  return tc_->Submit(cost, std::move(fn));
}

Booking NdbDatanode::RunLdm(PartitionId part, Nanos cost, SmallFn fn) {
  // A rejoining node in streaming catch-up runs LDM work (committed
  // reads and backup chain hops for already-resynced partitions) before
  // it is fully alive again; TC/IO roles stay down until Revive.
  // Submitted closures re-check accepting() themselves (see RunTc).
  if (!accepting()) return Booking{};
  const int thread = cluster_.layout().LdmThreadOf(part);
  return ldm_->SubmitTo(thread, cost, std::move(fn));
}

void NdbDatanode::TraceCpu(trace::SpanId parent, const char* what,
                           const Booking& b) {
  if (parent == 0) return;
  trace::Tracer& tr = cluster_.tracer();
  if (b.queued() > 0) {
    tr.AddSpanAt(parent, StrFormat("%s.queue", what), trace::Layer::kNdb,
                 trace::Cause::kCpuQueue, host_, az(), b.submit, b.start);
  }
  tr.AddSpanAt(parent, what, trace::Layer::kNdb, trace::Cause::kCpu, host_,
               az(), b.start, b.finish);
}

void NdbDatanode::RunIo(Nanos cost, SmallFn fn) {
  // Submitted closures re-check alive_ themselves (see RunTc).
  if (!alive_) return;
  io_->Submit(cost, std::move(fn));
}

void NdbDatanode::AccountRedo() {
  // With durability on, the journal accounts real record bytes and the
  // group-commit flush charges them; this legacy path only models the
  // disk traffic for durability-off clusters.
  if (cluster_has_durability_) return;
  redo_pending_bytes_ += cluster_.cost().redo_bytes_per_commit;
}

void NdbDatanode::LogRedo(
    int64_t epoch, PartitionId part, TxnId txn, TableId table, const Key& key,
    const std::optional<RowStore::AppliedWrite>& applied) {
  if (!cluster_has_durability_ || !applied) return;
  // The epoch was assigned once, by the TC, at the commit decision —
  // every replica of the transaction logs the identical epoch, so a GCP
  // tick between two replicas' applies can no longer split a commit
  // across epochs.
  journal_.Append(epoch, txn, table, key, part,
                  applied->type == WriteType::kDelete, applied->value,
                  cluster_.sim().now());
  UpdateRedoStallAccounting();
}

void NdbDatanode::UpdateRedoStallAccounting() {
  if (!cluster_has_durability_) return;
  const bool over = journal_.backlog_bytes() >
                    cluster_.node_config().redo_stall_backlog_bytes;
  if (over == redo_stalled_) return;
  const Nanos now = cluster_.sim().now();
  if (over) {
    redo_stalled_ = true;
    redo_stall_since_ = now;
  } else {
    redo_stalled_ = false;
    redo_stall_accum_ += now - redo_stall_since_;
  }
}

Nanos NdbDatanode::redo_stall_ns() const {
  Nanos total = redo_stall_accum_;
  if (redo_stalled_) total += cluster_.sim().now() - redo_stall_since_;
  return total;
}

void NdbDatanode::FlushRedo() {
  PROF_ZONE("ndb.redo.flush");
  // Catch-up backups log live chain writes too; they must keep flushing
  // or their backlog grows until backpressure sheds every write routed
  // through them — permanently, since nothing else drains the journal.
  if (!alive_ && !catchup_accepting_) return;
  if (cluster_has_durability_) {
    // Group commit: one log-disk write covers every record appended
    // since the previous flush (plus the fsync overhead). The batch
    // counts as durable only when the write lands; a crash in between
    // loses it. Queueing on the dedicated log disk means checkpoint and
    // recovery traffic on the data disk cannot delay commits — only a
    // genuinely slow log device can, and that surfaces as backpressure.
    const RedoJournal::FlushBatch batch = journal_.PrepareFlush();
    if (batch.upto_seqno == 0) return;
    const uint64_t gen = journal_.generation();
    RunIo(cluster_.cost().io_redo_per_commit, [this, batch, gen] {
      if (!alive_) return;
      log_disk_->Write(batch.disk_bytes, [this, batch, gen] {
        if (journal_.generation() != gen) return;
        journal_.MarkFlushed(batch);
        UpdateRedoStallAccounting();
      });
    });
    return;
  }
  if (redo_pending_bytes_ == 0) return;
  const int64_t bytes = std::exchange(redo_pending_bytes_, 0);
  RunIo(cluster_.cost().io_redo_per_commit, [this, bytes] {
    if (!alive_) return;
    log_disk_->Write(bytes, nullptr);
  });
}

void NdbDatanode::StartLocalCheckpoint(int64_t cluster_durable_epoch) {
  if (!alive_ || !cluster_has_durability_ || lcp_inflight_) return;
  const int64_t cut = journal_.CheckpointCutSeqno(cluster_durable_epoch);
  // Nothing new to fold: the cut has not advanced past the base in either
  // seqno or epoch terms. (The epoch check matters with deferred epoch
  // close: records of a just-closed epoch can sit below the previous
  // round's cut seqno and only become foldable now.)
  if (cut <= journal_.base_seqno() &&
      journal_.EpochAtCut(cut) <= journal_.base_epoch()) {
    return;
  }
  lcp_inflight_ = true;
  // Fragment LCP: one image write per partition, chained, each folding
  // only that partition's records — checkpoint I/O is spread across the
  // LCP instead of a single monolithic write, and a crash mid-round
  // still leaves every completed fragment's segments truncated.
  const int num_parts = cluster_.layout().num_partitions();
  const uint64_t gen = journal_.generation();
  auto step = std::make_shared<std::function<void(PartitionId)>>();
  // Capture weakly inside the function itself — a strong self-capture
  // would cycle and leak one continuation per LCP round. The async hops
  // below each hold a strong ref, so the chain stays alive exactly as
  // long as a fragment write is outstanding.
  std::weak_ptr<std::function<void(PartitionId)>> weak_step = step;
  *step = [this, cut, num_parts, gen, weak_step](PartitionId part) {
    auto step = weak_step.lock();
    if (!step || !alive_ || journal_.generation() != gen) {
      lcp_inflight_ = false;
      return;
    }
    if (part >= num_parts) {
      journal_.FinishCheckpointRound(cut, cluster_.sim().now());
      lcp_inflight_ = false;
      return;
    }
    const int64_t bytes =
        journal_.FragmentCheckpointBytes(part, num_parts, cut);
    RunIo(cluster_.cost().io_redo_per_commit, [this, part, bytes, cut, gen,
                                               step] {
      if (!alive_) return;
      disk_->Write(bytes, [this, part, cut, gen, step] {
        if (!alive_ || journal_.generation() != gen) {
          lcp_inflight_ = false;
          return;
        }
        journal_.CompleteFragmentCheckpoint(part, cut);
        (*step)(part + 1);
      });
    });
  };
  (*step)(0);
}

NdbDatanode::ReplayResult NdbDatanode::ReplayFromJournal(int64_t max_epoch) {
  const RedoJournal::ReplayPlan plan = journal_.PlanReplay(max_epoch);
  // Replay determinism audit: an independent replay into a scratch image
  // must produce byte-for-byte the same rows as the store replay below.
  const uint64_t expected = journal_.ReplayDigest(max_epoch);
  store_.Clear();
  ReplayResult result;
  result.entries = journal_.Replay(
      max_epoch,
      [this](TableId t, const Key& k, const std::string& v) {
        store_.BootstrapPut(t, k, v);
      },
      [this](TableId t, const Key& k) { store_.BootstrapDelete(t, k); });
  result.digest = DigestStore();
  result.deterministic = (result.digest == expected);
  result.covered = (result.entries == plan.entries);
  return result;
}

void NdbDatanode::CheckpointAdoptedImage(int64_t epoch) {
  journal_.InstallImageBegin(epoch, cluster_.sim().now());
  for (TableId t = 0; t < cluster_.catalog().num_tables(); ++t) {
    store_.ForEachCommitted(t, [this, t](const Key& key,
                                         const std::string& value) {
      journal_.InstallImageRow(t, key, value);
    });
  }
}

NdbDatanode::AdoptResult NdbDatanode::AdoptJournalFrom(
    const NdbDatanode& source, int64_t cut_epoch,
    int64_t cluster_closed_epoch, Nanos now) {
  const auto& layout = cluster_.layout();
  const auto mine = [&](TableId table, const Key& key) {
    const PartitionId part = layout.PartitionOf(table, key);
    for (NodeId n : layout.ReplicaChain(table, part)) {
      if (n == id_) return true;
    }
    return false;
  };
  const RedoJournal& src = source.journal();
  // Base image: the source's replay exactly at the cluster-durable epoch,
  // restricted to rows this node replicates. The source's own fragment
  // folds may have baked some later-epoch rows into its base for a few
  // partitions; RaiseFoldedEpoch records that so a cluster recovery can
  // never cut below what this image may contain.
  journal_.InstallImageBegin(cut_epoch, now);
  journal_.RaiseFoldedEpoch(src.max_folded_epoch());
  src.Replay(
      cut_epoch,
      [&](TableId t, const Key& k, const std::string& v) {
        if (mine(t, k)) journal_.InstallImageRow(t, k, v);
      },
      [&](TableId t, const Key& k) {
        if (mine(t, k)) journal_.InstallImageDelete(t, k);
      });
  AdoptResult result;
  result.image_bytes = journal_.base_bytes();
  // Tail: everything the base replay did not cover — records of epochs
  // past the cut, plus any record not yet durable on the source — is
  // re-adopted as ordinary log records with the source's epoch/txn
  // stamps. A cluster recovery cutting at cut_epoch drops them exactly
  // like everywhere else; nothing fresher than the cut hides in the base.
  for (const auto& seg : src.segments()) {
    for (const auto& r : seg.records) {
      if (r.folded) continue;
      if (r.epoch <= cut_epoch && r.seqno <= src.durable_seqno()) continue;
      if (!mine(r.table, r.key)) continue;
      journal_.AdoptRecord(r.epoch, r.txn, r.table, r.key, r.part, r.deleted,
                           r.value, r.appended_at);
      result.tail_bytes += r.bytes;
    }
  }
  // Cluster-closed epochs are complete in the adopted stream, so one
  // boundary at the closed horizon is exact. Later (still-open) epochs
  // must NOT be closed here: their commits may still be in flight, and
  // the cluster will close them on this node once it is alive again.
  journal_.CloseEpoch(cluster_closed_epoch);
  return result;
}

uint64_t NdbDatanode::DigestStore() const {
  ImageDigest digest;
  for (TableId t = 0; t < cluster_.catalog().num_tables(); ++t) {
    store_.ForEachCommitted(t, [&digest, t](const Key& key,
                                            const std::string& value) {
      digest.AddRow(t, key, value);
    });
  }
  return digest.value();
}

void NdbDatanode::ResetStats() {
  proto_stats_ = ProtocolStats{};
  ldm_->ResetStats();
  tc_->ResetStats();
  recv_->ResetStats();
  send_->ResetStats();
  rep_->ResetStats();
  io_->ResetStats();
  main_->ResetStats();
  disk_->ResetStats();
}

// ---------------------------------------------------------------------------
// TC role
// ---------------------------------------------------------------------------

NdbDatanode::TcTxn& NdbDatanode::Txn(TxnId txn, ApiNodeId api) {
  TcTxn& t = txns_[txn];
  if (t.api < 0) t.api = api;
  return t;
}

void NdbDatanode::Touch(TcTxn& t) { t.last_activity = cluster_.sim().now(); }

NodeId NdbDatanode::RouteCommittedRead(TableId table, PartitionId part,
                                       int* replica_idx) {
  const TableDef& td = cluster_.catalog().table(table);
  auto& layout = cluster_.layout();
  NodeId node;
  if (td.read_backup || td.fully_replicated) {
    const std::vector<NodeId> chain = td.fully_replicated
        ? layout.ReplicaChain(table, part)
        : layout.ReplicaChain(part);
    node = layout.PickByProximity(az(), chain, cluster_.flags().az_aware,
                                  rr_counter_++, part);
  } else {
    // Classic NDB: committed reads are redirected to the primary because
    // backups lag until the Complete phase.
    node = layout.PrimaryOf(part);
  }
  if (node == kNoNode) {
    *replica_idx = -1;
    return kNoNode;
  }
  const auto& configured = layout.ReplicaChain(part);
  *replica_idx = static_cast<int>(configured.size());
  for (size_t i = 0; i < configured.size(); ++i) {
    if (configured[i] == node) {
      *replica_idx = static_cast<int>(i);
      break;
    }
  }
  return node;
}

void NdbDatanode::TcKeyOp(KeyOpReq req) {
  PROF_ZONE("ndb.tc.keyop");
  const trace::SpanId op_span = req.span;
  const Booking b = RunTc(cluster_.cost().tc_route_op,
                          [this, req = std::move(req)]() mutable {
    if (!alive_) return;
    const auto& cost = cluster_.cost();
    auto& layout = cluster_.layout();
    // Deadline propagation: refuse doomed work before routing it to an
    // LDM (the API node already gave up at the same instant).
    if (resilience::DeadlineExpired(req.deadline, cluster_.sim().now())) {
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kDeadlineExceeded, {}, {}});
      return;
    }
    const PartitionId part = layout.PartitionOf(req.table, req.key);
    TcTxn& t = Txn(req.txn, req.api);
    Touch(t);
    if (t.aborted) {
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kAborted, {}, {}});
      return;
    }

    if (!req.is_write && req.mode == LockMode::kReadCommitted) {
      int replica_idx = -1;
      const NodeId serving = RouteCommittedRead(req.table, part, &replica_idx);
      if (serving == kNoNode) {
        SendToApi(req.api, cost.msg_small,
                  OpReply{req.txn, req.op_id, Code::kUnavailable, {}, {}});
        return;
      }
      cluster_.RecordReplicaRead(part, replica_idx);
      const trace::SpanId s = req.span;
      SendToNode(serving, cost.msg_read_req,
                 [req = std::move(req), replica_idx](NdbDatanode& n) mutable {
                   n.LdmCommittedRead(std::move(req), replica_idx);
                 },
                 s);
      return;
    }

    if (!req.is_write) {
      // Shared/exclusive read: always the primary replica (§II-B2).
      const NodeId primary = layout.PrimaryOf(part);
      if (primary == kNoNode) {
        SendToApi(req.api, cost.msg_small,
                  OpReply{req.txn, req.op_id, Code::kUnavailable, {}, {}});
        return;
      }
      cluster_.RecordReplicaRead(part, 0);
      PrepareReq probe;
      probe.txn = req.txn;
      probe.tc = id_;
      probe.op_id = req.op_id;
      probe.api = req.api;
      probe.table = req.table;
      probe.key = std::move(req.key);
      probe.part = part;
      probe.insert_only = req.mode == LockMode::kExclusive;  // X vs S marker
      probe.span = req.span;
      const trace::SpanId s = probe.span;
      SendToNode(primary, cost.msg_read_req,
                 [probe = std::move(probe)](NdbDatanode& n) mutable {
                   n.LdmLockedRead(std::move(probe));
                 },
                 s);
      return;
    }

    if (test_lose_acked_writes_) {
      // Deliberate bug (see set_test_lose_acked_writes): swallow the write
      // and ack success. The transaction later commits "cleanly" with no
      // staged rows, so the client believes the write is durable.
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kOk, {}, {}});
      return;
    }

    // Write: start the prepare chain (locks taken at the primary first).
    // Alive replicas in configured order; a rejoining node that already
    // caught up on this partition joins as a *backup* so live writes keep
    // flowing to it mid-resync — never as primary (its lock manager
    // predates the crash and must not serialise writers).
    std::vector<NodeId> chain;
    const auto& chain_conf = layout.ReplicaChain(req.table, part);
    for (NodeId n : chain_conf) {
      if (layout.alive(n)) chain.push_back(n);
    }
    for (NodeId n : chain_conf) {
      if (!layout.alive(n) && layout.catchup_ready(n, part)) {
        chain.push_back(n);
      }
    }
    if (chain.empty()) {
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kUnavailable, {}, {}});
      return;
    }
    const TableDef& td = cluster_.catalog().table(req.table);
    if ((td.read_backup || td.fully_replicated) &&
        cluster_.flags().read_backup_commit_ack) {
      t.delay_ack = true;
    }
    PrepareReq prep;
    prep.txn = req.txn;
    prep.tc = id_;
    prep.op_id = req.op_id;
    prep.api = req.api;
    prep.table = req.table;
    prep.key = std::move(req.key);
    prep.part = part;
    prep.type = req.write_type;
    prep.insert_only = req.insert_only;
    prep.must_exist = req.must_exist;
    prep.value = std::move(req.value);
    prep.chain = std::move(chain);
    prep.pos = 0;
    prep.span = req.span;
    t.inflight_parts.push_back(part);
    const int64_t bytes =
        cost.msg_write_base + static_cast<int64_t>(prep.value.size());
    const NodeId first = prep.chain[0];
    const trace::SpanId s = prep.span;
    SendToNode(first, bytes,
               [prep = std::move(prep)](NdbDatanode& n) mutable {
                 n.LdmPrepare(std::move(prep));
               },
               s);
  });
  TraceCpu(op_span, "tc.route", b);
}

void NdbDatanode::TcScan(ScanReq req) {
  PROF_ZONE("ndb.tc.scan");
  const trace::SpanId op_span = req.span;
  const Booking b = RunTc(cluster_.cost().tc_route_op,
                          [this, req = std::move(req)]() mutable {
    if (!alive_) return;
    const auto& cost = cluster_.cost();
    if (resilience::DeadlineExpired(req.deadline, cluster_.sim().now())) {
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kDeadlineExceeded, {}, {}});
      return;
    }
    const PartitionId part =
        cluster_.layout().PartitionOf(req.table, req.prefix);
    TcTxn& t = Txn(req.txn, req.api);
    Touch(t);
    int replica_idx = -1;
    const NodeId serving = RouteCommittedRead(req.table, part, &replica_idx);
    if (serving == kNoNode) {
      SendToApi(req.api, cost.msg_small,
                OpReply{req.txn, req.op_id, Code::kUnavailable, {}, {}});
      return;
    }
    cluster_.RecordReplicaRead(part, replica_idx);
    const trace::SpanId s = req.span;
    SendToNode(serving, cost.msg_scan_req,
               [req = std::move(req), part,
                replica_idx](NdbDatanode& n) mutable {
                 n.LdmScanExec(std::move(req), part, replica_idx);
               },
               s);
  });
  TraceCpu(op_span, "tc.route", b);
}

void NdbDatanode::TcPrepared(TxnId txn, uint64_t op_id, Code code,
                             TableId table, Key key, PartitionId part,
                             std::vector<NodeId> chain, trace::SpanId span) {
  const Booking b = RunTc(
      cluster_.cost().tc_route_op,
      [this, txn, op_id, code, table, key = std::move(key), part,
       chain = std::move(chain), span]() mutable {
        if (!alive_) return;
        auto it = txns_.find(txn);
        const auto& cost = cluster_.cost();
        if (it == txns_.end() || it->second.aborted) {
          // Txn gone (aborted/timed out): roll the prepared row back.
          for (NodeId n : chain) {
            SendToNode(n, cost.msg_small,
                       [txn, table, key, part](NdbDatanode& d) {
                         d.LdmAbortRow(txn, table, key, part);
                       });
          }
          return;
        }
        TcTxn& t = it->second;
        Touch(t);
        if (code != Code::kOk) {
          AbortTxnInternal(txn, t, /*notify_api=*/false, code);
          // The failed op itself is answered with the specific code.
          SendToApi(t.api, cost.msg_small, OpReply{txn, op_id, code, {}, {}},
                    span);
          txns_.erase(txn);
          return;
        }
        t.writes.push_back(
            TcTxn::WriteRow{table, std::move(key), part, std::move(chain)});
        SendToApi(t.api, cost.msg_small,
                  OpReply{txn, op_id, Code::kOk, {}, {}}, span);
      });
  TraceCpu(span, "tc.prepared", b);
}

void NdbDatanode::TcLockedReadResult(TxnId txn, uint64_t op_id, Code code,
                                     std::optional<std::string> value,
                                     TableId table, Key key, PartitionId part,
                                     trace::SpanId span) {
  const Booking b = RunTc(
      cluster_.cost().tc_route_op,
      [this, txn, op_id, code, value = std::move(value), table,
       key = std::move(key), part, span]() mutable {
          if (!alive_) return;
          const auto& cost = cluster_.cost();
          auto it = txns_.find(txn);
          if (it == txns_.end() || it->second.aborted) {
            if (code == Code::kOk) {
              // Grant raced with an abort: release the stray lock.
              const NodeId primary = cluster_.layout().PrimaryOf(part);
              if (primary != kNoNode) {
                SendToNode(primary, cost.msg_small,
                           [txn, table, key, part](NdbDatanode& d) {
                             d.LdmAbortRow(txn, table, key, part);
                           });
              }
            }
            return;
          }
          TcTxn& t = it->second;
          Touch(t);
          if (code == Code::kTimedOut) {
            AbortTxnInternal(txn, t, /*notify_api=*/false, code);
            SendToApi(t.api, cost.msg_small,
                      OpReply{txn, op_id, code, {}, {}}, span);
            txns_.erase(txn);
            return;
          }
          if (code == Code::kOk) {
            t.read_locks.push_back(TcTxn::HeldLock{
                table, key, part, cluster_.layout().PrimaryOf(part)});
          }
          const int64_t bytes =
              cost.msg_small +
              (value ? static_cast<int64_t>(value->size()) : 0);
          SendToApi(t.api, bytes,
                    OpReply{txn, op_id, code, std::move(value), {}}, span);
        });
  TraceCpu(span, "tc.read_result", b);
}

void NdbDatanode::TcCommit(TxnId txn, uint64_t op_id, ApiNodeId api,
                           trace::SpanId span) {
  PROF_ZONE("ndb.tc.commit");
  const Booking b = RunTc(cluster_.cost().tc_begin,
                          [this, txn, op_id, api, span] {
    if (!alive_) return;
    const auto& cost = cluster_.cost();
    auto it = txns_.find(txn);
    if (it == txns_.end()) {
      // Nothing known (e.g. freshly aborted): report failure.
      SendToApi(api, cost.msg_small,
                OpReply{txn, op_id, Code::kAborted, {}, {}}, span);
      return;
    }
    TcTxn& t = it->second;
    Touch(t);
    if (t.aborted) {
      SendToApi(api, cost.msg_small,
                OpReply{txn, op_id, Code::kAborted, {}, {}}, span);
      txns_.erase(txn);
      return;
    }
    t.committing = true;
    t.commit_op_id = op_id;
    t.commit_span = span;
    // Transaction-atomic epoch assignment: the whole transaction belongs
    // to the currently open GCP epoch, decided once, here. Every replica
    // stamps its redo records with this epoch regardless of when its
    // chain message arrives, and the cluster keeps the epoch open until
    // all such transactions have fully committed.
    t.commit_epoch = gcp_epoch_ + 1;

    // Release shared/exclusive read locks: the commit point is reached.
    // Rows that were read-locked *and* written keep their lock until the
    // commit chain reaches the primary (which both applies the pending
    // write and unlocks).
    for (const auto& rl : t.read_locks) {
      bool also_written = false;
      for (const auto& w : t.writes) {
        if (w.table == rl.table && w.key == rl.key) {
          also_written = true;
          break;
        }
      }
      if (also_written) continue;
      SendToNode(rl.node, cost.msg_small,
                 [txn, table = rl.table, key = rl.key,
                  part = rl.part](NdbDatanode& d) {
                   d.LdmUnlock(txn, table, key, part);
                 });
    }
    t.read_locks.clear();

    if (t.writes.empty()) {
      SendToApi(t.api, cost.msg_small,
                OpReply{txn, op_id, Code::kOk, {}, {}}, span);
      txns_.erase(txn);
      return;
    }

    // Commit phase: traverse each row chain in reverse (backups first,
    // primary last — Fig. 2 messages 5..9).
    t.pending_commits = static_cast<int>(t.writes.size());
    for (const auto& w : t.writes) {
      RunTc(cost.tc_commit_row, [] {});
      CommitChainReq creq;
      creq.txn = txn;
      creq.tc = id_;
      creq.table = w.table;
      creq.key = w.key;
      creq.part = w.part;
      creq.epoch = t.commit_epoch;
      creq.chain = w.chain;
      creq.pos = static_cast<int>(w.chain.size()) - 1;
      creq.span = span;
      const NodeId last = w.chain.back();
      SendToNode(last, cost.msg_small,
                 [creq = std::move(creq)](NdbDatanode& n) mutable {
                   n.LdmCommitChain(std::move(creq));
                 },
                 span);
    }
  });
  TraceCpu(span, "tc.commit", b);
}

void NdbDatanode::TcCommitted(TxnId txn) {
  PROF_ZONE("ndb.tc.committed");
  RunTc(cluster_.cost().tc_commit_row, [this, txn] {
    if (!alive_) return;
    auto it = txns_.find(txn);
    if (it == txns_.end()) return;
    TcTxn& t = it->second;
    if (--t.pending_commits > 0) return;
    // All primaries committed. Classic NDB acks the client here (message
    // 10 of Fig. 2); with Read Backup the ack waits for the Complete
    // phase (message 14, §IV-A3).
    if (!t.delay_ack) FinishCommit(txn, t);
    StartCompletePhase(txn, t);
  });
}

void NdbDatanode::StartCompletePhase(TxnId txn, TcTxn& t) {
  PROF_ZONE("ndb.tc.complete_phase");
  const auto& cost = cluster_.cost();
  t.pending_completes = 0;
  for (const auto& w : t.writes) t.pending_completes += static_cast<int>(w.chain.size());
  for (const auto& w : t.writes) {
    RunTc(cost.tc_complete_row, [] {});
    for (size_t i = 0; i < w.chain.size(); ++i) {
      CompleteReq creq;
      creq.txn = txn;
      creq.tc = id_;
      creq.table = w.table;
      creq.key = w.key;
      creq.part = w.part;
      creq.epoch = t.commit_epoch;
      creq.is_primary = i == 0;
      creq.span = t.commit_span;
      SendToNode(w.chain[i], cost.msg_small,
                 [creq = std::move(creq)](NdbDatanode& n) mutable {
                   n.LdmComplete(std::move(creq));
                 },
                 t.commit_span);
    }
  }
  if (t.pending_completes == 0 && t.delay_ack) {
    FinishCommit(txn, t);
    txns_.erase(txn);
  }
}

void NdbDatanode::TcCompleted(TxnId txn) {
  PROF_ZONE("ndb.tc.completed");
  RunTc(cluster_.cost().tc_complete_row, [this, txn] {
    if (!alive_) return;
    auto it = txns_.find(txn);
    if (it == txns_.end()) return;
    TcTxn& t = it->second;
    if (--t.pending_completes > 0) return;
    if (t.delay_ack) FinishCommit(txn, t);
    txns_.erase(txn);
  });
}

void NdbDatanode::FinishCommit(TxnId txn, TcTxn& t) {
  SendToApi(t.api, cluster_.cost().msg_small,
            OpReply{txn, t.commit_op_id, Code::kOk, {}, {}}, t.commit_span);
  t.commit_op_id = 0;
  t.commit_span = 0;
}

void NdbDatanode::TcAbort(TxnId txn) {
  RunTc(cluster_.cost().tc_begin, [this, txn] {
    if (!alive_) return;
    auto it = txns_.find(txn);
    if (it == txns_.end()) return;
    AbortTxnInternal(txn, it->second, /*notify_api=*/false, Code::kAborted);
    txns_.erase(txn);
  });
}

void NdbDatanode::AbortTxnInternal(TxnId txn, TcTxn& t, bool notify_api,
                                   Code code) {
  const auto& cost = cluster_.cost();
  t.aborted = true;
  for (const auto& w : t.writes) {
    for (NodeId n : w.chain) {
      SendToNode(n, cost.msg_small,
                 [txn, table = w.table, key = w.key,
                  part = w.part](NdbDatanode& d) {
                   d.LdmAbortRow(txn, table, key, part);
                 });
    }
  }
  for (const auto& rl : t.read_locks) {
    SendToNode(rl.node, cost.msg_small,
               [txn, table = rl.table, key = rl.key,
                part = rl.part](NdbDatanode& d) {
                 d.LdmAbortRow(txn, table, key, part);
               });
  }
  t.writes.clear();
  t.read_locks.clear();
  if (notify_api && t.api >= 0) {
    SendToApi(t.api, cost.msg_small,
              OpReply{txn, t.commit_op_id, code, {}, {}});
  }
}

void NdbDatanode::AbortTxnsInvolving(NodeId failed) {
  std::vector<TxnId> doomed;
  for (auto& [txn, t] : txns_) {
    bool involved = false;
    for (const auto& w : t.writes) {
      for (NodeId n : w.chain) {
        if (n == failed) involved = true;
      }
    }
    for (const auto& rl : t.read_locks) {
      if (rl.node == failed) involved = true;
    }
    if (involved) doomed.push_back(txn);
  }
  for (TxnId txn : doomed) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) continue;
    AbortTxnInternal(txn, it->second, /*notify_api=*/true, Code::kUnavailable);
    txns_.erase(it);
  }
}

std::vector<NdbDatanode::TakeoverRow> NdbDatanode::DrainTxnRowsForTakeover() {
  std::vector<TakeoverRow> rows;
  for (auto& [txn, t] : txns_) {
    for (const auto& w : t.writes) {
      for (NodeId n : w.chain) {
        rows.push_back(TakeoverRow{txn, w.table, w.key, w.part, n,
                                   t.committing, t.commit_epoch});
      }
    }
    for (const auto& rl : t.read_locks) {
      rows.push_back(TakeoverRow{txn, rl.table, rl.key, rl.part, rl.node,
                                 /*commit_forward=*/false, /*epoch=*/0});
    }
  }
  txns_.clear();
  return rows;
}

void NdbDatanode::ResolveTakenOverRow(const TakeoverRow& row) {
  if (row.commit_forward) {
    // Roll forward with the dead coordinator's commit epoch, matching
    // whatever the already-applied replicas logged for this transaction.
    LogRedo(row.epoch != 0 ? row.epoch : gcp_epoch_ + 1, row.part, row.txn,
            row.table, row.key, store_.Commit(row.table, row.key, row.txn));
    AccountRedo();
  } else {
    store_.Abort(row.table, row.key, row.txn);
  }
  locks_.Release(row.txn, row.table, row.key);
}

void NdbDatanode::SweepInactiveTxns() {
  PROF_ZONE("ndb.tc.sweep");
  const Nanos cutoff =
      cluster_.sim().now() - cluster_.node_config().txn_inactive_timeout;
  std::vector<TxnId> doomed;
  std::vector<TxnId> stalled;
  for (auto& [txn, t] : txns_) {
    if (t.last_activity < cutoff && !t.committing) doomed.push_back(txn);
    if (t.last_activity < cutoff && t.committing && !t.aborted) {
      stalled.push_back(txn);
    }
  }
  // A committing transaction past its commit point cannot abort; it can
  // only be wedged by a lost Commit/Complete hop. Chain members that are
  // layout-alive are handled by the failure detector (eviction + take-over
  // resolves the txn), but catch-up backups live outside its purview: a
  // partition that swallows their Complete leaves the txn — and every
  // pending replica slot it holds — stuck forever. Re-drive the stalled
  // phase instead: both LdmCommitChain and LdmComplete are idempotent
  // (Commit no-ops without a pending write, acks are always sent).
  for (TxnId txn : stalled) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) continue;
    RedriveStalledCommit(txn, it->second);
  }
  for (TxnId txn : doomed) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) continue;
    RLOG_DEBUG(kLog, "node %d aborting inactive txn %llu", id_,
               static_cast<unsigned long long>(txn));
    AbortTxnInternal(txn, it->second, /*notify_api=*/false, Code::kTimedOut);
    txns_.erase(it);
  }

  // Resolve pending writes whose coordinating transaction no longer
  // exists. Take-over and TC-side aborts roll back only the rows the TC
  // had recorded, and the TC records a write only once the whole chain
  // has prepared — so a prepare or complete whose ack was lost with its
  // coordinator leaves pending slots (and, on the primary, a row lock)
  // that nothing else will ever free. A pending write is an orphan once
  // it is older than the inactivity timeout (anything younger may still
  // have its TcPrepared/Complete legitimately in flight) and its TC is
  // dead, restarted (empty transaction table), or has forgotten the txn.
  std::vector<RowStore::PendingRow> orphans;
  store_.ForEachPending([&](const RowStore::PendingRow& p) {
    if (p.tc == kNoNode || p.staged_at >= cutoff) return;
    if (!cluster_.layout().alive(p.tc) ||
        !cluster_.datanode(p.tc).HasActiveTxn(p.txn)) {
      orphans.push_back(p);
    }
  });
  for (const auto& o : orphans) {
    // Roll forward or back? The transaction may have reached its commit
    // point — primary applied, client acked — with only this replica's
    // Complete lost, in which case aborting would leave the replica
    // diverged forever. Consult the other alive replicas
    // (copy-fragment-style repair): if any of them has already applied
    // this exact write, commit it here too; otherwise no one acked it
    // and rollback is safe.
    bool committed_elsewhere = false;
    const PartitionId part = cluster_.layout().PartitionOf(o.table, o.key);
    for (NodeId r : cluster_.layout().ReplicaChain(o.table, part)) {
      if (r == id_ || !cluster_.layout().alive(r)) continue;
      const RowStore& other = cluster_.datanode(r).store();
      if (o.type == WriteType::kPut) {
        const auto v = other.Read(o.table, o.key, /*reader_txn=*/0);
        if (v && *v == o.value) {
          committed_elsewhere = true;
          break;
        }
      } else if (!other.ExistsCommitted(o.table, o.key) &&
                 store_.ExistsCommitted(o.table, o.key)) {
        committed_elsewhere = true;
        break;
      }
    }
    RLOG_DEBUG(kLog, "node %d resolving orphaned pending write on %s (txn "
               "%llu): %s",
               id_, o.key.c_str(), static_cast<unsigned long long>(o.txn),
               committed_elsewhere ? "roll forward" : "roll back");
    if (committed_elsewhere) {
      // The coordinator (and its commit-decision epoch) died with the
      // ack; log under the currently open epoch. Orphan roll-forward only
      // fires minutes of sim-time after a TC death, so the cluster
      // recovery cut has long since passed the original epoch anyway.
      LogRedo(gcp_epoch_ + 1, part, o.txn, o.table, o.key,
              store_.Commit(o.table, o.key, o.txn));
      AccountRedo();
    } else {
      store_.Abort(o.table, o.key, o.txn);
    }
    locks_.Release(o.txn, o.table, o.key);
  }
}

void NdbDatanode::RedriveStalledCommit(TxnId txn, TcTxn& t) {
  Touch(t);  // one re-drive per inactivity timeout, not per sweep tick
  ++proto_stats_.commit_redrives;
  const auto& cost = cluster_.cost();
  // A chain member that is neither layout-alive nor still accepting
  // catch-up traffic has lost its in-memory pending writes for good
  // (crashed mid-catch-up, or its resync was abandoned); waiting on its
  // ack would wedge the txn forever. Merely-partitioned members stay in —
  // the next re-drive reaches them once the partition heals.
  auto gone = [this](NodeId n) {
    return !cluster_.layout().alive(n) &&
           !cluster_.datanode(n).catchup_accepting();
  };
  if (t.pending_commits > 0) {
    RLOG_DEBUG(kLog, "node %d re-driving commit chains for stalled txn %llu",
               id_, static_cast<unsigned long long>(txn));
    t.pending_commits = static_cast<int>(t.writes.size());
    for (const auto& w : t.writes) {
      CommitChainReq creq;
      creq.txn = txn;
      creq.tc = id_;
      creq.table = w.table;
      creq.key = w.key;
      creq.part = w.part;
      creq.epoch = t.commit_epoch;
      creq.span = t.commit_span;
      // The primary (chain head) always stays: it is layout-alive or the
      // failure detector's take-over path owns this txn's resolution.
      creq.chain.push_back(w.chain.front());
      for (size_t i = 1; i < w.chain.size(); ++i) {
        if (!gone(w.chain[i])) creq.chain.push_back(w.chain[i]);
      }
      creq.pos = static_cast<int>(creq.chain.size()) - 1;
      const NodeId last = creq.chain.back();
      const trace::SpanId s = creq.span;
      SendToNode(last, cost.msg_small,
                 [creq = std::move(creq)](NdbDatanode& n) mutable {
                   n.LdmCommitChain(std::move(creq));
                 },
                 s);
    }
    return;
  }
  if (t.pending_completes <= 0) return;
  RLOG_DEBUG(kLog, "node %d re-driving complete phase for stalled txn %llu",
             id_, static_cast<unsigned long long>(txn));
  t.pending_completes = 0;
  for (const auto& w : t.writes) {
    for (size_t i = 0; i < w.chain.size(); ++i) {
      if (i > 0 && gone(w.chain[i])) continue;
      ++t.pending_completes;
    }
  }
  for (const auto& w : t.writes) {
    for (size_t i = 0; i < w.chain.size(); ++i) {
      if (i > 0 && gone(w.chain[i])) continue;
      CompleteReq creq;
      creq.txn = txn;
      creq.tc = id_;
      creq.table = w.table;
      creq.key = w.key;
      creq.part = w.part;
      creq.epoch = t.commit_epoch;
      creq.is_primary = i == 0;
      creq.span = t.commit_span;
      SendToNode(w.chain[i], cost.msg_small,
                 [creq = std::move(creq)](NdbDatanode& n) mutable {
                   n.LdmComplete(std::move(creq));
                 },
                 t.commit_span);
    }
  }
}

// ---------------------------------------------------------------------------
// LDM role
// ---------------------------------------------------------------------------

void NdbDatanode::LdmCommittedRead(KeyOpReq req, int replica_idx) {
  PROF_ZONE("ndb.ldm.committed_read");
  (void)replica_idx;
  ++proto_stats_.committed_reads;
  const PartitionId part = cluster_.layout().PartitionOf(req.table, req.key);
  const trace::SpanId span = req.span;
  const Booking b =
      RunLdm(part, cluster_.cost().ldm_read, [this, req = std::move(req)] {
        if (!accepting()) return;
        // Streaming catch-up availability: reads this node absorbed for
        // already-resynced partitions while still rejoining.
        if (!alive_) ++catchup_reads_served_;
        const auto value = store_.Read(req.table, req.key, req.txn);
        const int64_t bytes =
            cluster_.cost().msg_small +
            (value ? static_cast<int64_t>(value->size()) : 0);
        SendToApi(req.api, bytes,
                  OpReply{req.txn, req.op_id, Code::kOk, value, {}}, req.span);
      });
  TraceCpu(span, "ldm.read", b);
}

void NdbDatanode::LdmLockedRead(PrepareReq probe) {
  PROF_ZONE("ndb.ldm.locked_read");
  ++proto_stats_.locked_reads;
  // `insert_only` doubles as the exclusive-mode marker for lock probes.
  const LockMode mode =
      probe.insert_only ? LockMode::kExclusive : LockMode::kShared;
  const trace::SpanId op_span = probe.span;
  const Booking b = RunLdm(
      probe.part, cluster_.cost().ldm_read,
      [this, probe = std::move(probe), mode] {
        if (!accepting()) return;
        const trace::SpanId wait = cluster_.tracer().StartSpan(
            probe.span, "lock.wait", trace::Layer::kNdb,
            trace::Cause::kLockWait, host_, az());
        locks_.Acquire(
            probe.txn, probe.table, probe.key, mode,
            [this, probe, wait](Status s) {
              cluster_.tracer().EndSpan(wait);
              std::optional<std::string> value;
              Code code = Code::kOk;
              if (s.ok()) {
                value = store_.Read(probe.table, probe.key, probe.txn);
                if (!value) {
                  // Missing row: do not retain a lock on a ghost.
                  locks_.Release(probe.txn, probe.table, probe.key);
                  code = Code::kNotFound;
                }
              } else {
                code = s.code();
              }
              const int64_t bytes =
                  cluster_.cost().msg_small +
                  (value ? static_cast<int64_t>(value->size()) : 0);
              const trace::SpanId s2 = probe.span;
              SendToNode(probe.tc, bytes,
                         [probe, code, value](NdbDatanode& tc) {
                           tc.TcLockedReadResult(probe.txn, probe.op_id, code,
                                                 value, probe.table, probe.key,
                                                 probe.part, probe.span);
                         },
                         s2);
            });
      });
  TraceCpu(op_span, "ldm.read", b);
}

void NdbDatanode::ForwardPrepare(PrepareReq req) {
  const auto& cost = cluster_.cost();
  if (req.pos + 1 < static_cast<int>(req.chain.size())) {
    req.pos += 1;
    const NodeId next = req.chain[req.pos];
    const int64_t bytes =
        cost.msg_write_base + static_cast<int64_t>(req.value.size());
    const trace::SpanId s = req.span;
    SendToNode(next, bytes,
               [req = std::move(req)](NdbDatanode& n) mutable {
                 n.LdmPrepare(std::move(req));
               },
               s);
  } else {
    const trace::SpanId s = req.span;
    SendToNode(req.tc, cost.msg_small,
               [req = std::move(req)](NdbDatanode& tc) {
                 tc.TcPrepared(req.txn, req.op_id, Code::kOk, req.table,
                               req.key, req.part, req.chain, req.span);
               },
               s);
  }
}

void NdbDatanode::LdmPrepare(PrepareReq req) {
  PROF_ZONE("ndb.ldm.prepare");
  if (req.busy_retries == 0) ++proto_stats_.prepares;
  const trace::SpanId op_span = req.busy_retries == 0 ? req.span : 0;
  const Booking b = RunLdm(
      req.part, cluster_.cost().ldm_prepare,
      [this, req = std::move(req)]() mutable {
           if (!accepting()) return;
           if (!cluster_.layout().alive(req.tc)) {
             // The coordinator died while this prepare was in flight.
             // Take-over has already rolled its transactions back, but it
             // can only see rows the TC had recorded — and the TC records
             // a write only once the whole chain has prepared. Rows staged
             // by earlier chain members are therefore invisible to
             // take-over: unwind them here instead of staging one more
             // pending write that nobody will ever commit or abort.
             const auto& cost = cluster_.cost();
             for (int i = 0; i < req.pos; ++i) {
               SendToNode(req.chain[i], cost.msg_small,
                          [txn = req.txn, table = req.table, key = req.key,
                           part = req.part](NdbDatanode& d) {
                            d.LdmAbortRow(txn, table, key, part);
                          });
             }
             return;
           }
           // Redo backpressure: refuse new work while the unflushed
           // journal backlog exceeds the stall limit (saturated or
           // grey-slow log disk). kResourceExhausted aborts the txn and
           // counts against availability, so the AIMD admission layer
           // sheds load until the log disk catches up — bounding journal
           // memory instead of growing it without limit. Commits already
           // past their decision point are never stalled (WAL semantics:
           // backpressure applies at admission, not at apply).
           if (cluster_has_durability_ &&
               journal_.backlog_bytes() >
                   cluster_.node_config().redo_stall_backlog_bytes) {
             const auto& cost = cluster_.cost();
             for (int i = 0; i < req.pos; ++i) {
               SendToNode(req.chain[i], cost.msg_small,
                          [txn = req.txn, table = req.table, key = req.key,
                           part = req.part](NdbDatanode& d) {
                            d.LdmAbortRow(txn, table, key, part);
                          });
             }
             const trace::SpanId sp = req.span;
             SendToNode(req.tc, cost.msg_small,
                        [req](NdbDatanode& tc) {
                          tc.TcPrepared(req.txn, req.op_id,
                                        Code::kResourceExhausted, req.table,
                                        req.key, req.part, req.chain,
                                        req.span);
                        },
                        sp);
             return;
           }
           trace::Tracer& tracer = cluster_.tracer();
           const bool is_primary = req.pos == 0;
           if (!is_primary) {
             // Backups stage the pending write without locking; the
             // primary's lock serialises writers. A backup may still hold
             // the previous transaction's pending write (applied only when
             // its Complete lands): wait for that slot to free — the
             // predecessor's Complete/Abort is already in flight, and
             // coordinator failure frees the slot via take-over.
             if (!store_.Prepare(req.table, req.key, req.type, req.value,
                                 req.txn, req.tc, cluster_.sim().now())) {
               req.busy_retries += 1;
               if (req.busy_retries > 1000) {
                 RLOG_WARN(kLog, "node %d: pending slot on %s never freed",
                           id_, req.key.c_str());
                 const trace::SpanId s = req.span;
                 SendToNode(req.tc, cluster_.cost().msg_small,
                            [req](NdbDatanode& tc) {
                              tc.TcPrepared(req.txn, req.op_id,
                                            Code::kTimedOut, req.table,
                                            req.key, req.part, req.chain,
                                            req.span);
                            },
                            s);
                 return;
               }
               const Nanos now = cluster_.sim().now();
               tracer.AddSpanAt(req.span, "prepare.busy_wait",
                                trace::Layer::kNdb, trace::Cause::kRetry,
                                host_, az(), now, now + 200 * kMicrosecond);
               cluster_.sim().After(200 * kMicrosecond,
                                    [this, req = std::move(req)]() mutable {
                                      // Catch-up backups must keep retrying
                                      // (and eventually NACK) like any other
                                      // backup — dying silently here leaves
                                      // the TC waiting for a reply that
                                      // never comes.
                                      if (accepting()) {
                                        LdmPrepare(std::move(req));
                                      }
                                    });
               return;
             }
             ForwardPrepare(std::move(req));
             return;
           }
           // Copy the lock identity out before moving req into the
           // continuation (argument evaluation order is unspecified).
           const TxnId txn = req.txn;
           const TableId table = req.table;
           const Key key = req.key;
           const trace::SpanId wait =
               tracer.StartSpan(req.span, "lock.wait", trace::Layer::kNdb,
                                trace::Cause::kLockWait, host_, az());
           locks_.Acquire(
               txn, table, key, LockMode::kExclusive,
               [this, req = std::move(req), wait](Status s) mutable {
                 cluster_.tracer().EndSpan(wait);
                 Code code = Code::kOk;
                 if (!s.ok()) {
                   code = s.code();
                 } else if (req.insert_only &&
                            store_.ExistsCommitted(req.table, req.key)) {
                   code = Code::kAlreadyExists;
                 } else if (req.must_exist &&
                            !store_.ExistsCommitted(req.table, req.key)) {
                   code = Code::kNotFound;
                 }
                 if (code != Code::kOk) {
                   if (s.ok()) locks_.Release(req.txn, req.table, req.key);
                   const trace::SpanId sp = req.span;
                   SendToNode(req.tc, cluster_.cost().msg_small,
                              [req, code](NdbDatanode& tc) {
                                tc.TcPrepared(req.txn, req.op_id, code,
                                              req.table, req.key, req.part,
                                              req.chain, req.span);
                              },
                              sp);
                   return;
                 }
                 // The row lock serialises writers on a stable primary,
                 // but the primary role itself can move — a failover, or
                 // a catch-up rejoin that re-attached this node after it
                 // staged the row as a backup under the old chain. The
                 // slot may therefore hold another transaction's pending
                 // write; stage under the lock, waiting for that write's
                 // in-flight Complete/Abort (or take-over / the orphan
                 // sweep) to free it.
                 LdmPrimaryStage(std::move(req));
               });
         });
  TraceCpu(op_span, "ldm.prepare", b);
}

// Stages the primary's pending write. Caller holds the row's exclusive
// lock; the lock outlives the retries, so writers stay serialised while
// a previous chain's pending write drains out of the slot.
void NdbDatanode::LdmPrimaryStage(PrepareReq req) {
  PROF_ZONE("ndb.ldm.primary_stage");
  if (store_.Prepare(req.table, req.key, req.type, req.value, req.txn,
                     req.tc, cluster_.sim().now())) {
    ForwardPrepare(std::move(req));
    return;
  }
  req.busy_retries += 1;
  if (req.busy_retries > 1000) {
    RLOG_WARN(kLog, "node %d: primary pending slot on %s never freed", id_,
              req.key.c_str());
    locks_.Release(req.txn, req.table, req.key);
    const trace::SpanId sp = req.span;
    SendToNode(req.tc, cluster_.cost().msg_small,
               [req](NdbDatanode& tc) {
                 tc.TcPrepared(req.txn, req.op_id, Code::kTimedOut, req.table,
                               req.key, req.part, req.chain, req.span);
               },
               sp);
    return;
  }
  const Nanos now = cluster_.sim().now();
  cluster_.tracer().AddSpanAt(req.span, "prepare.busy_wait",
                              trace::Layer::kNdb, trace::Cause::kRetry, host_,
                              az(), now, now + 200 * kMicrosecond);
  cluster_.sim().After(200 * kMicrosecond,
                       [this, req = std::move(req)]() mutable {
                         // A crash clears the lock table and pending rows;
                         // the retry dies with them.
                         if (alive_) LdmPrimaryStage(std::move(req));
                       });
}

void NdbDatanode::LdmCommitChain(CommitChainReq req) {
  PROF_ZONE("ndb.ldm.commit_chain");
  ++proto_stats_.commit_hops;
  const trace::SpanId op_span = req.span;
  const Booking b = RunLdm(
      req.part, cluster_.cost().ldm_commit,
      [this, req = std::move(req)]() mutable {
        if (!accepting()) return;
        const auto& cost = cluster_.cost();
        if (req.pos == 0) {
          // The primary is the commit point: apply, unlock, confirm.
          LogRedo(req.epoch, req.part, req.txn, req.table, req.key,
                  store_.Commit(req.table, req.key, req.txn));
          locks_.Release(req.txn, req.table, req.key);
          AccountRedo();
          SendToNode(req.tc, cost.msg_small,
                     [txn = req.txn](NdbDatanode& tc) {
                       tc.TcCommitted(txn);
                     },
                     req.span);
          return;
        }
        // Backups only pass the Commit along; their pending write is
        // applied at Complete — the window behind the primary-read
        // redirection rule (§II-B2).
        req.pos -= 1;
        const NodeId next = req.chain[req.pos];
        const trace::SpanId s = req.span;
        SendToNode(next, cost.msg_small,
                   [req = std::move(req)](NdbDatanode& n) mutable {
                     n.LdmCommitChain(std::move(req));
                   },
                   s);
      });
  TraceCpu(op_span, "ldm.commit", b);
}

void NdbDatanode::LdmComplete(CompleteReq req) {
  PROF_ZONE("ndb.ldm.complete");
  ++proto_stats_.completes;
  const trace::SpanId op_span = req.span;
  const Booking b = RunLdm(
      req.part, cluster_.cost().ldm_complete,
      [this, req = std::move(req)] {
        if (!accepting()) return;
        if (!req.is_primary) {
          LogRedo(req.epoch, req.part, req.txn, req.table, req.key,
                  store_.Commit(req.table, req.key, req.txn));
          AccountRedo();
        }
        SendToNode(req.tc, cluster_.cost().msg_small,
                   [txn = req.txn](NdbDatanode& tc) {
                     tc.TcCompleted(txn);
                   },
                   req.span);
      });
  TraceCpu(op_span, "ldm.complete", b);
}

void NdbDatanode::LdmAbortRow(TxnId txn, TableId table, Key key,
                              PartitionId part) {
  RunLdm(part, cluster_.cost().ldm_complete,
         [this, txn, table, key = std::move(key)] {
           if (!accepting()) return;
           store_.Abort(table, key, txn);
           locks_.Release(txn, table, key);
         });
}

void NdbDatanode::LdmUnlock(TxnId txn, TableId table, Key key,
                            PartitionId part) {
  RunLdm(part, cluster_.cost().ldm_complete,
         [this, txn, table, key = std::move(key)] {
           if (!accepting()) return;
           locks_.Release(txn, table, key);
         });
}

void NdbDatanode::LdmScanExec(ScanReq req, PartitionId part, int replica_idx) {
  (void)replica_idx;
  ++proto_stats_.scans;
  // Row lookup is done inline; the LDM cost scales with rows returned.
  auto rows = store_.ScanPrefix(req.table, req.prefix, req.txn);
  const auto& cost = cluster_.cost();
  const Nanos work = cost.ldm_scan_base +
                     cost.ldm_scan_row * static_cast<Nanos>(rows.size());
  const trace::SpanId op_span = req.span;
  const Booking b = RunLdm(part, work, [this, req = std::move(req),
                                        rows = std::move(rows)]() mutable {
    if (!accepting()) return;
    int64_t bytes = cluster_.cost().msg_small;
    for (const auto& [k, v] : rows) {
      bytes += static_cast<int64_t>(k.size() + v.size());
    }
    OpReply reply{req.txn, req.op_id, Code::kOk, {}, std::move(rows)};
    SendToApi(req.api, bytes, std::move(reply), req.span);
  });
  TraceCpu(op_span, "ldm.scan", b);
}

}  // namespace repro::ndb
