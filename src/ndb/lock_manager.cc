#include "ndb/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace repro::ndb {

LockManager::LockManager(Simulation& sim, Nanos wait_timeout)
    : sim_(sim), wait_timeout_(wait_timeout) {}

bool LockManager::TryGrant(Entry& entry, TxnId txn, LockMode mode) {
  assert(mode != LockMode::kReadCommitted);
  const bool want_exclusive = mode == LockMode::kExclusive;
  const bool already_holds =
      std::find(entry.holders.begin(), entry.holders.end(), txn) !=
      entry.holders.end();

  if (entry.holders.empty()) {
    entry.holders.push_back(txn);
    entry.exclusive = want_exclusive;
    return true;
  }
  if (already_holds) {
    if (!want_exclusive || entry.exclusive) return true;  // re-entrant
    if (entry.holders.size() == 1) {
      entry.exclusive = true;  // sole-holder upgrade S -> X
      return true;
    }
    return false;
  }
  if (!entry.exclusive && !want_exclusive) {
    entry.holders.push_back(txn);
    return true;
  }
  return false;
}

void LockManager::Acquire(TxnId txn, TableId table, const Key& key,
                          LockMode mode,
                          std::function<void(Status)> granted) {
  const LockKey lk{table, key};
  Entry& entry = locks_[lk];
  if (TryGrant(entry, txn, mode)) {
    auto& held = held_by_txn_[txn];
    if (std::find(held.begin(), held.end(), lk) == held.end()) {
      held.push_back(lk);
    }
    ++total_grants_;
    granted(OkStatus());
    return;
  }

  const uint64_t waiter_id = next_waiter_id_++;
  entry.waiters.push_back(
      Waiter{waiter_id, txn, mode, std::move(granted), sim_.now()});

  // Deadlock / starvation breaker: abandon the wait after the timeout.
  sim_.After(wait_timeout_, [this, lk, waiter_id] {
    auto it = locks_.find(lk);
    if (it == locks_.end()) return;
    auto& waiters = it->second.waiters;
    for (auto w = waiters.begin(); w != waiters.end(); ++w) {
      if (w->id == waiter_id) {
        auto cb = std::move(w->granted);
        waiters.erase(w);
        ++total_timeouts_;
        EraseIfIdle(lk);
        cb(TimedOut("lock wait timeout (deadlock detection)"));
        return;
      }
    }
  });
}

void LockManager::GrantWaiters(const LockKey& lk) {
  // The granted callback may synchronously re-enter the lock manager
  // (release, acquire, even erase this entry), so no Entry reference can
  // be held across it — re-find the entry on every iteration.
  while (true) {
    auto it = locks_.find(lk);
    if (it == locks_.end() || it->second.waiters.empty()) return;
    Entry& entry = it->second;
    Waiter& w = entry.waiters.front();
    if (!TryGrant(entry, w.txn, w.mode)) return;
    auto& held = held_by_txn_[w.txn];
    if (std::find(held.begin(), held.end(), lk) == held.end()) {
      held.push_back(lk);
    }
    ++total_grants_;
    ++total_waits_;
    total_wait_ns_ += sim_.now() - w.enqueued;
    auto cb = std::move(w.granted);
    entry.waiters.pop_front();
    cb(OkStatus());
  }
}

void LockManager::EraseIfIdle(const LockKey& lk) {
  auto it = locks_.find(lk);
  if (it != locks_.end() && it->second.holders.empty() &&
      it->second.waiters.empty()) {
    locks_.erase(it);
  }
}

void LockManager::Release(TxnId txn, TableId table, const Key& key) {
  const LockKey lk{table, key};
  auto it = locks_.find(lk);
  if (it == locks_.end()) return;
  Entry& entry = it->second;
  auto h = std::find(entry.holders.begin(), entry.holders.end(), txn);
  if (h == entry.holders.end()) return;
  entry.holders.erase(h);
  if (entry.holders.empty()) entry.exclusive = false;

  auto& held = held_by_txn_[txn];
  held.erase(std::remove(held.begin(), held.end(), lk), held.end());
  if (held.empty()) held_by_txn_.erase(txn);

  GrantWaiters(lk);
  EraseIfIdle(lk);
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_by_txn_.find(txn);
  if (it != held_by_txn_.end()) {
    // Copy: Release mutates held_by_txn_.
    std::vector<LockKey> keys = it->second;
    for (const auto& lk : keys) Release(txn, lk.table, lk.key);
  }
  // Cancel queued waits belonging to txn (aborted while waiting).
  for (auto& [lk, entry] : locks_) {
    auto& ws = entry.waiters;
    ws.erase(std::remove_if(ws.begin(), ws.end(),
                            [txn](const Waiter& w) { return w.txn == txn; }),
             ws.end());
  }
}

bool LockManager::IsLocked(TableId table, const Key& key) const {
  auto it = locks_.find(LockKey{table, key});
  return it != locks_.end() && !it->second.holders.empty();
}

}  // namespace repro::ndb
