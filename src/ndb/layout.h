// Cluster layout: node groups, partition placement, and AZ awareness.
//
// N datanodes with replication factor R form N/R node groups (§II-B1).
// Each partition is owned by one node group; one member holds the primary
// replica, the others hold backups. The layout also records each node's
// LocationDomainId (its AZ, §IV-A) and computes the proximity score used
// to order candidate nodes (§IV-A4):
//   1. same host & same AZ  →  2. same AZ  →  3. different AZ.
// On node failure the first alive replica in a partition's chain acts as
// primary (backup promotion, §IV-A2).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ndb/schema.h"
#include "ndb/types.h"
#include "sim/topology.h"

namespace repro::ndb {

struct LayoutConfig {
  int num_datanodes = 12;
  int replication_factor = 2;
  // LocationDomainId per datanode (same length as num_datanodes). Node
  // group members are interleaved across AZs exactly as Figs. 3 & 4: group
  // g = nodes {g, g + G, g + 2G, ...}, so assigning AZs round-robin per
  // group slot spreads every group over the AZs.
  std::vector<AzId> node_az;
  // Partitions per table = partitions_per_ldm * num_ldm_threads * groups.
  int num_ldm_threads = 12;
  int partitions_per_ldm = 2;
};

class ClusterLayout {
 public:
  ClusterLayout(LayoutConfig config, const Catalog* catalog);

  int num_nodes() const { return config_.num_datanodes; }
  int num_groups() const { return num_groups_; }
  int replication() const { return config_.replication_factor; }
  int num_partitions() const { return num_partitions_; }
  AzId az_of(NodeId n) const { return config_.node_az[n]; }
  int group_of(NodeId n) const { return n % num_groups_; }

  bool alive(NodeId n) const { return alive_[n]; }
  void set_alive(NodeId n, bool alive) {
    alive_[n] = alive;
    // Either direction ends any streaming catch-up: a fully rejoined node
    // serves as a normal replica, a freshly dead one serves nothing.
    ClearCatchup(n);
  }
  int alive_count() const;

  // ---- streaming catch-up fences (node rejoin) ----
  // While a node resyncs, the cluster marks each partition the moment its
  // delta copy completes; reads (and backup chain hops) may then be
  // routed to the node for those partitions even though it is not alive
  // in the layout yet.
  void SetCatchupReady(NodeId n, PartitionId p) { catchup_[n][p] = true; }
  bool catchup_ready(NodeId n, PartitionId p) const { return catchup_[n][p]; }
  void ClearCatchup(NodeId n) {
    catchup_[n].assign(catchup_[n].size(), false);
  }
  // True if `n` can serve partition `p`: alive, or caught up on it.
  bool serves(NodeId n, PartitionId p) const {
    return alive_[n] || catchup_[n][p];
  }

  // True while every partition still has at least one alive replica.
  bool Viable() const;

  PartitionId PartitionOf(TableId table, std::string_view row_key) const;

  // Replica chain of a partition in configured order (primary first). For
  // fully replicated tables the chain covers every node: the partition's
  // node group first, then all remaining nodes.
  const std::vector<NodeId>& ReplicaChain(PartitionId p) const {
    return replica_chain_[p];
  }
  std::vector<NodeId> ReplicaChain(TableId table, PartitionId p) const;

  // Current primary: the first alive node in the chain (backup promotion).
  NodeId PrimaryOf(PartitionId p) const;

  // Which LDM thread owns partition p on any of its replicas.
  int LdmThreadOf(PartitionId p) const;

  // Proximity score of serving node `n` from the point of view of a
  // caller in AZ `from_az` on host `from_host` (lower is closer). The
  // host dimension only matters when an API node shares a host with a
  // datanode.
  int ProximityScore(AzId from_az, bool same_host, NodeId n) const;

  // Picks the best node from `candidates` for a caller in `from_az`:
  // lowest proximity score, ties broken round-robin for load balancing.
  // Skips dead nodes; returns kNoNode if none alive. When `az_aware` is
  // false (vanilla HopsFS / classic NDB), picks round-robin among alive
  // candidates regardless of AZ. When `part` >= 0, a rejoining node that
  // has caught up on that partition also qualifies (streaming catch-up).
  NodeId PickByProximity(AzId from_az, const std::vector<NodeId>& candidates,
                         bool az_aware, uint64_t tie_break,
                         PartitionId part = -1) const;

  const Catalog& catalog() const { return *catalog_; }

 private:
  LayoutConfig config_;
  const Catalog* catalog_;
  int num_groups_;
  int num_partitions_;
  std::vector<bool> alive_;
  // catchup_[n][p]: node n (not alive) has resynced partition p and may
  // serve it mid-rejoin. Cleared whenever n's aliveness flips.
  std::vector<std::vector<bool>> catchup_;
  std::vector<std::vector<NodeId>> replica_chain_;
  std::vector<int> ldm_thread_;
};

// Helpers to build the AZ assignments used throughout the evaluation.
// `azs` lists the AZ of each "deployment zone slot"; e.g. {1} puts all
// nodes in one AZ, {1,2} alternates Fig. 3 style, {0,1,2} spreads over
// three AZs Fig. 4 style.
std::vector<AzId> AssignNodeAzs(int num_nodes, int replication,
                                const std::vector<AzId>& azs);

}  // namespace repro::ndb
