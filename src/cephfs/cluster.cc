#include "cephfs/cluster.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"
#include "util/strings.h"

namespace repro::cephfs {

namespace {
constexpr const char* kLog = "cephfs";

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

CephCluster::CephCluster(Simulation& sim, Network& network, CephConfig config)
    : sim_(sim), network_(network), config_(config),
      rng_(sim.rng().Split()) {
  auto& topo = network_.topology();
  for (int i = 0; i < config_.num_osds; ++i) {
    const AzId az = i % 3;  // HA across the three AZs (§V-A)
    const HostId host = topo.AddHost(az, StrFormat("osd-%d", i));
    osds_.push_back(std::make_unique<CephOsd>(sim_, i, host, az, config_));
  }
  for (int r = 0; r < config_.num_mds; ++r) {
    const AzId az = r % 3;
    const HostId host = topo.AddHost(az, StrFormat("mds-%d", r));
    mds_.push_back(std::make_unique<CephMds>(*this, r, host, az));
  }
}

CephCluster::~CephCluster() {
  for (auto& t : timers_) t.Cancel();
}

void CephCluster::Start() {
  for (auto& m : mds_) {
    CephMds* mds = m.get();
    timers_.push_back(sim_.Every(config_.journal_flush_interval,
                                 [mds] { mds->FlushJournal(); }));
  }
  if (config_.variant != CephVariant::kDirPinned) {
    timers_.push_back(
        sim_.Every(config_.balance_interval, [this] { BalanceOnce(); }));
  }
}

int CephCluster::SubtreeIndex(const std::string& path) {
  // "/user/uX/..." -> X+1; everything else (/, /user) -> subtree 0.
  constexpr std::string_view kPrefix = "/user/u";
  if (!StartsWith(path, kPrefix)) return 0;
  size_t i = kPrefix.size();
  int x = 0;
  bool any = false;
  while (i < path.size() && path[i] >= '0' && path[i] <= '9') {
    x = x * 10 + (path[i] - '0');
    ++i;
    any = true;
  }
  if (!any || (i < path.size() && path[i] != '/')) return 0;
  return x + 1;
}

std::string CephCluster::SubtreePrefix(int subtree) {
  assert(subtree > 0);
  return StrFormat("/user/u%d", subtree - 1);
}

int CephCluster::OwnerOf(const std::string& path) const {
  const int subtree = SubtreeIndex(path);
  if (subtree < static_cast<int>(subtree_owner_.size())) {
    return subtree_owner_[subtree];
  }
  // Subtrees created after bootstrap: hash placement.
  return static_cast<int>(Mix64(static_cast<uint64_t>(subtree)) %
                          static_cast<uint64_t>(mds_.size()));
}

Nanos CephCluster::subtree_frozen_until(const std::string& path) const {
  auto it = frozen_until_.find(SubtreeIndex(path));
  return it == frozen_until_.end() ? 0 : it->second;
}

CephClient* CephCluster::AddClient(AzId az) {
  const HostId host = network_.topology().AddHost(
      az, StrFormat("ceph-client-%zu", clients_.size()));
  clients_.push_back(std::make_unique<CephClient>(
      *this, static_cast<int>(clients_.size()), host, az));
  return clients_.back().get();
}

void CephCluster::BootstrapNamespace(const std::vector<std::string>& dirs,
                                     const std::vector<std::string>& files) {
  // Authority. DirPinned stripes subtrees across ranks (s % M): the
  // manual, load-aware pinning of §V-A. The default balancer distributes
  // at subtree granularity and ends up with contiguous ranges per rank —
  // which concentrates the popular (low-numbered) users on few ranks,
  // the imbalance the paper's DirPinned setup was built to avoid.
  int max_subtree = 0;
  for (const auto& d : dirs) max_subtree = std::max(max_subtree, SubtreeIndex(d));
  subtree_owner_.resize(max_subtree + 1);
  const int m = static_cast<int>(mds_.size());
  // The default balancer is conservative: it splits load across only part
  // of the available ranks, routinely leaving ranks idle (a well-known
  // multi-MDS behaviour). Manual pinning uses every rank. The idle ranks
  // also mean the default variant journals less in aggregate, which keeps
  // it under the OSD journal wall that caps DirPinned past ~24 ranks.
  const int effective =
      config_.variant == CephVariant::kDirPinned ? m : std::max(1, 2 * m / 3);
  for (int s = 0; s <= max_subtree; ++s) {
    subtree_owner_[s] = s % effective;
  }

  CephInode root;
  root.is_dir = true;
  mds_[subtree_owner_[0]]->InstallInode("/", root);

  auto install = [this](const std::string& path, bool is_dir) {
    CephInode inode;
    inode.is_dir = is_dir;
    inode.mtime = sim_.now();
    mds_[OwnerOf(path)]->InstallInode(path, inode);
    // Parent-child listing links for entries at subtree boundaries are
    // kept by the child's owner, which also answers listings for them.
  };
  for (const auto& d : dirs) install(d, true);
  for (const auto& f : files) install(f, false);
}

void CephCluster::PrewarmClientCaches(
    const std::vector<std::string>& paths) {
  if (config_.variant == CephVariant::kSkipKCache) return;
  for (auto& client : clients_) {
    for (const auto& p : paths) client->PrewarmCache(p);
  }
}

void CephCluster::WriteObject(HostId from, uint64_t key_hash, int64_t bytes,
                              std::function<void()> done) {
  // Replicated write: primary + (replication-1) copies, ack on slowest.
  const int n = static_cast<int>(osds_.size());
  auto remaining = std::make_shared<int>(config_.replication);
  for (int r = 0; r < config_.replication; ++r) {
    CephOsd& osd = *osds_[(Mix64(key_hash) + r) % n];
    network_.Send(from, osd.host(), bytes,
                  [&osd, bytes, remaining, done] {
                    osd.WriteObject(bytes, [remaining, done] {
                      if (--*remaining == 0 && done) done();
                    });
                  });
  }
}

void CephCluster::BalanceOnce() {
  // The default balancer: move the hottest subtree from the most loaded
  // rank to the least loaded one.
  if (mds_.size() < 2 || subtree_owner_.size() < 2) return;
  int hot_rank = 0, cold_rank = 0;
  for (int r = 1; r < num_mds(); ++r) {
    if (mds_[r]->ops_window() > mds_[hot_rank]->ops_window()) hot_rank = r;
    if (mds_[r]->ops_window() < mds_[cold_rank]->ops_window()) cold_rank = r;
  }
  for (auto& m : mds_) m->ResetWindow();
  if (hot_rank == cold_rank) return;

  // Pick one subtree owned by the hot rank (round-robin-ish via rng).
  std::vector<int> owned;
  for (int s = 1; s < static_cast<int>(subtree_owner_.size()); ++s) {
    if (subtree_owner_[s] == hot_rank) owned.push_back(s);
  }
  if (owned.empty()) return;
  const int subtree = owned[rng_.NextBelow(owned.size())];
  const std::string prefix = SubtreePrefix(subtree);

  RLOG_DEBUG(kLog, "migrating subtree %s: mds%d -> mds%d", prefix.c_str(),
             hot_rank, cold_rank);
  auto moved = mds_[hot_rank]->ExtractSubtree(prefix);
  for (auto& [path, inode] : moved) {
    mds_[cold_rank]->InstallInode(path, inode);
  }
  subtree_owner_[subtree] = cold_rank;
  frozen_until_[subtree] = sim_.now() + config_.migration_pause;
  ++map_version_;
}

void CephCluster::ResetStats() {
  for (auto& m : mds_) m->ResetStats();
  for (auto& o : osds_) o->ResetStats();
}

}  // namespace repro::cephfs
