#include "cephfs/cluster.h"

#include <algorithm>

#include "util/strings.h"

namespace repro::cephfs {

CephMds::CephMds(CephCluster& cluster, int rank, HostId host, AzId az)
    : cluster_(cluster), rank_(rank), host_(host), az_(az),
      cpu_(cluster.sim(), StrFormat("mds%d", rank), /*threads=*/1) {}

void CephMds::InstallInode(const std::string& path, CephInode inode) {
  metadata_[path] = inode;
  const auto [parent, base] = SplitParent(path);
  if (!base.empty()) children_[parent].insert(base);
}

std::vector<std::pair<std::string, CephInode>> CephMds::ExtractSubtree(
    const std::string& prefix) {
  std::vector<std::pair<std::string, CephInode>> out;
  for (auto it = metadata_.begin(); it != metadata_.end();) {
    if (it->first == prefix || StartsWith(it->first, prefix + "/")) {
      out.emplace_back(it->first, it->second);
      children_.erase(it->first);
      caps_.erase(it->first);
      it = metadata_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

Nanos CephMds::JournalAppend(bool mutation) {
  const auto& cfg = cluster_.config();
  // Updates log full events; handled reads log session/cap records.
  journal_pending_ += mutation ? cfg.journal_bytes_per_op
                               : cfg.journal_read_bytes_per_op;
  Nanos cost = 0;
  if (journal_pending_ >= cfg.journal_segment_bytes) {
    FlushJournal();
    cost += cfg.journal_flush_cpu;
  }
  // Backpressure: once the OSD pool lags behind the journal, the single
  // MDS thread stalls waiting for segments to become durable.
  if (journal_inflight_ > cfg.journal_inflight_limit) {
    cost += cfg.journal_stall_cost;
  }
  return cost;
}

void CephMds::FlushJournal() {
  if (journal_pending_ == 0) return;
  const int64_t bytes = journal_pending_;
  journal_pending_ = 0;
  journal_inflight_ += bytes;
  cluster_.WriteObject(host_, static_cast<uint64_t>(rank_) * 2654435761u,
                       bytes,
                       [this, bytes] { journal_inflight_ -= bytes; });
}

void CephMds::GrantCap(const std::string& path, int client_id) {
  auto& holders = caps_[path];
  for (const auto& h : holders) {
    if (h.client_id == client_id) return;
  }
  if (static_cast<int>(holders.size()) >= cluster_.config().max_cap_holders) {
    holders.erase(holders.begin());  // recall the oldest holder
  }
  holders.push_back(
      CapHolder{client_id, cluster_.client(client_id)->host()});
}

void CephMds::InvalidateCaps(const std::string& path, Nanos* extra_cost) {
  auto it = caps_.find(path);
  if (it == caps_.end()) return;
  const auto& cfg = cluster_.config();
  for (const auto& holder : it->second) {
    *extra_cost += cfg.cap_invalidate_cost;
    CephClient* c = cluster_.client(holder.client_id);
    cluster_.network().Send(host_, holder.host, 96, [c, path] {
      c->InvalidateCap(path);
    });
  }
  caps_.erase(it);
}

void CephMds::Apply(const CephRequest& req, CephReply* out) {
  const auto [parent, base] = SplitParent(req.path);
  auto find = [this](const std::string& p) -> CephInode* {
    auto it = metadata_.find(p);
    return it == metadata_.end() ? nullptr : &it->second;
  };

  switch (req.op) {
    case FsOp::kStat:
    case FsOp::kOpenRead: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      if (req.op == FsOp::kOpenRead && inode->is_dir) {
        out->status = FailedPrecondition("read: is a directory");
        return;
      }
      out->inode = *inode;
      out->cap_granted = req.want_cap;
      if (req.want_cap) GrantCap(req.path, req.client_id);
      return;
    }
    case FsOp::kListDir: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      out->inode = *inode;
      auto it = children_.find(req.path);
      out->children = inode->is_dir
                          ? (it == children_.end()
                                 ? 0
                                 : static_cast<int64_t>(it->second.size()))
                          : 1;
      out->cap_granted = req.want_cap;
      if (req.want_cap) GrantCap(req.path, req.client_id);
      return;
    }
    case FsOp::kMkdir:
    case FsOp::kCreate: {
      CephInode* p = find(parent);
      if (p == nullptr || !p->is_dir) {
        out->status = NotFound("parent missing");
        return;
      }
      if (find(req.path) != nullptr) {
        out->status = AlreadyExists(req.path);
        return;
      }
      CephInode inode;
      inode.is_dir = req.op == FsOp::kMkdir;
      inode.size = req.size;
      inode.mtime = cluster_.sim().now();
      metadata_[req.path] = inode;
      children_[parent].insert(base);
      p->mtime = inode.mtime;
      return;
    }
    case FsOp::kDelete: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      if (inode->is_dir) {
        auto it = children_.find(req.path);
        if (it != children_.end() && !it->second.empty()) {
          out->status = FailedPrecondition("directory not empty");
          return;
        }
        children_.erase(req.path);
      }
      metadata_.erase(req.path);
      children_[parent].erase(base);
      return;
    }
    case FsOp::kRename: {
      CephInode* src = find(req.path);
      if (src == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      if (find(req.path2) != nullptr) {
        out->status = AlreadyExists(req.path2);
        return;
      }
      const auto [dst_parent, dst_base] = SplitParent(req.path2);
      CephInode* dp = find(dst_parent);
      if (dp == nullptr || !dp->is_dir) {
        out->status = NotFound("destination parent missing");
        return;
      }
      // Subtree renames within one authority move the whole prefix.
      CephInode moved = *src;
      metadata_.erase(req.path);
      children_[parent].erase(base);
      if (moved.is_dir) {
        auto sub = ExtractSubtree(req.path);  // children of the moved dir
        for (auto& [old_path, inode] : sub) {
          std::string new_path =
              req.path2 + old_path.substr(req.path.size());
          InstallInode(new_path, inode);
        }
      }
      metadata_[req.path2] = moved;
      children_[dst_parent].insert(dst_base);
      return;
    }
    case FsOp::kChmod:
    case FsOp::kChown:
    case FsOp::kSetTimes:
    case FsOp::kAppend: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      if (req.op == FsOp::kAppend) {
        if (inode->is_dir) {
          out->status = FailedPrecondition("append: is a directory");
          return;
        }
        inode->size += req.size;
      } else if (req.op == FsOp::kChmod) {
        inode->permissions = 0600;
      }
      inode->mtime = cluster_.sim().now();
      return;
    }
    case FsOp::kContentSummary: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      // Counts are scoped to this rank's authority (subtrees never span
      // ranks for /user/uX paths, which is all the workload uses).
      int64_t files = 0;
      const std::string prefix = req.path + "/";
      for (const auto& [path, node] : metadata_) {
        if (path == req.path || StartsWith(path, prefix)) {
          if (!node.is_dir) ++files;
        }
      }
      out->children = files;
      return;
    }
    case FsOp::kDeleteRecursive: {
      CephInode* inode = find(req.path);
      if (inode == nullptr) {
        out->status = NotFound(req.path);
        return;
      }
      const auto [par, base2] = SplitParent(req.path);
      ExtractSubtree(req.path);
      metadata_.erase(req.path);
      children_.erase(req.path);
      children_[par].erase(base2);
      return;
    }
  }
}

void CephMds::HandleRequest(CephRequest req,
                            std::function<void(CephReply)> reply) {
  const auto& cfg = cluster_.config();

  // Authority check: misrouted requests are forwarded.
  const int owner = cluster_.OwnerOf(req.path);
  if (owner != rank_) {
    cpu_.Submit(cfg.mds_forward_cost, [this, owner,
                                       reply = std::move(reply)] {
      CephReply out;
      out.forwarded = true;
      out.owner = owner;
      out.map_version = cluster_.map_version();
      reply(std::move(out));
    });
    return;
  }

  // Migrations freeze the subtree briefly: delay until thawed.
  const Nanos frozen = cluster_.subtree_frozen_until(req.path);
  if (frozen > cluster_.sim().now()) {
    cluster_.sim().At(frozen, [this, req = std::move(req),
                               reply = std::move(reply)]() mutable {
      HandleRequest(std::move(req), std::move(reply));
    });
    return;
  }

  const bool mutation =
      req.op == FsOp::kMkdir || req.op == FsOp::kCreate ||
      req.op == FsOp::kDelete || req.op == FsOp::kRename ||
      req.op == FsOp::kChmod;

  Nanos cost = cfg.mds_op_cost;
  CephReply out;
  out.map_version = cluster_.map_version();
  Apply(req, &out);
  ++handled_ops_;
  ++ops_window_;

  if (mutation && out.status.ok()) {
    // Recall capabilities from every holder of the mutated path and of
    // the parent directory (its listing changed) — the cost that grows
    // with the number of clients.
    InvalidateCaps(req.path, &cost);
    cluster_.NoteMutation(req.path);
    const auto [parent, base] = SplitParent(req.path);
    InvalidateCaps(parent, &cost);
    cluster_.NoteMutation(parent);
    if (req.op == FsOp::kRename) {
      InvalidateCaps(req.path2, &cost);
      InvalidateCaps(SplitParent(req.path2).first, &cost);
      cluster_.NoteMutation(req.path2);
      cluster_.NoteMutation(SplitParent(req.path2).first);
    }
  }
  cost += JournalAppend(mutation && out.status.ok());

  cpu_.Submit(cost, [reply = std::move(reply), out = std::move(out)] {
    reply(std::move(out));
  });
}

}  // namespace repro::cephfs
