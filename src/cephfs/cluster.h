// CephFS baseline: MON-less model of MDS ranks + OSD pool + clients.
//
// Metadata semantics match the HopsFS layer (same FsOp set, same error
// codes) so the same workload driver and tests run against both systems.
// The performance-relevant mechanisms are modelled faithfully:
//   * each MDS rank is single-threaded (the MDS global lock, §VI),
//   * every handled update appends to a journal that is flushed to the
//     replicated OSD pool (the disk curve of Fig. 12d),
//   * clients hold capabilities backing a kernel metadata cache; mutations
//     recall capabilities from every holder (the cost that grows with
//     client count, Fig. 6),
//   * the namespace is partitioned across ranks by user subtree — pinned
//     statically (DirPinned) or rebalanced dynamically (default), with
//     misrouted requests forwarded and migrations pausing the subtree.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cephfs/config.h"
#include "hopsfs/namenode.h"  // FsOp
#include "sim/network.h"
#include "sim/resources.h"
#include "util/rng.h"
#include "util/status.h"

namespace repro::cephfs {

using hopsfs::FsOp;

class CephCluster;
class CephClient;

struct CephInode {
  bool is_dir = false;
  int64_t size = 0;
  uint32_t permissions = 0644;
  Nanos mtime = 0;
};

struct CephRequest {
  FsOp op = FsOp::kStat;
  std::string path;
  std::string path2;
  int64_t size = 0;
  int client_id = -1;
  int map_version = 0;
  bool want_cap = true;
};

struct CephReply {
  Status status;
  bool forwarded = false;  // wrong rank; retry at `owner` with new map
  int owner = 0;
  int map_version = 0;
  bool cap_granted = false;
  CephInode inode;
  int64_t children = 0;
};

// ---------------------------------------------------------------------------

class CephOsd {
 public:
  CephOsd(Simulation& sim, int id, HostId host, AzId az,
          const CephConfig& config);

  int id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }

  void WriteObject(int64_t bytes, std::function<void()> done);
  void ReadObject(int64_t bytes, std::function<void()> done);

  ThreadPool& cpu() { return cpu_; }
  Disk& disk() { return disk_; }
  void ResetStats();

 private:
  int id_;
  HostId host_;
  AzId az_;
  ThreadPool cpu_;
  Disk disk_;
};

// ---------------------------------------------------------------------------

class CephMds {
 public:
  CephMds(CephCluster& cluster, int rank, HostId host, AzId az);

  int rank() const { return rank_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }

  // Request entry point (invoked on this host by the client stub).
  void HandleRequest(CephRequest req, std::function<void(CephReply)> reply);

  // Bootstrap / migration: installs an inode without protocol cost.
  void InstallInode(const std::string& path, CephInode inode);
  // Removes and returns the metadata of one user subtree (migration).
  std::vector<std::pair<std::string, CephInode>> ExtractSubtree(
      const std::string& prefix);

  int64_t handled_ops() const { return handled_ops_; }
  int64_t ops_window() const { return ops_window_; }
  void ResetWindow() { ops_window_ = 0; }
  const ThreadPool& cpu_pool() const { return cpu_; }
  void ResetStats() { cpu_.ResetStats(); }
  void FlushJournal();

 private:
  struct CapHolder {
    int client_id;
    HostId host;
  };

  void Apply(const CephRequest& req, CephReply* out);
  void GrantCap(const std::string& path, int client_id);
  void InvalidateCaps(const std::string& path, Nanos* extra_cost);
  Nanos JournalAppend(bool mutation);

  CephCluster& cluster_;
  int rank_;
  HostId host_;
  AzId az_;
  ThreadPool cpu_;  // exactly one thread: the MDS global lock

  std::unordered_map<std::string, CephInode> metadata_;
  std::unordered_map<std::string, std::set<std::string>> children_;
  std::unordered_map<std::string, std::vector<CapHolder>> caps_;

  int64_t journal_pending_ = 0;
  int64_t journal_inflight_ = 0;  // flushed but not yet durable on OSDs
  int64_t handled_ops_ = 0;
  int64_t ops_window_ = 0;
};

// ---------------------------------------------------------------------------

class CephClient {
 public:
  CephClient(CephCluster& cluster, int id, HostId host, AzId az);

  int id() const { return id_; }
  HostId host() const { return host_; }
  AzId az() const { return az_; }

  // Workload entry point (FsTarget-compatible signature).
  void Execute(FsOp op, const std::string& path, const std::string& path2,
               int64_t size, std::function<void(Status)> done);

  // Cap recall from an MDS.
  void InvalidateCap(const std::string& path);
  // Steady-state prewarm (see CephCluster::PrewarmClientCaches).
  void PrewarmCache(const std::string& path) { cache_[path] = 0; }

  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

 private:
  bool CacheServes(FsOp op, const std::string& path) const;
  void SendToMds(CephRequest req, std::function<void(Status)> done,
                 int attempt);

  CephCluster& cluster_;
  int id_;
  HostId host_;
  AzId az_;
  Rng rng_;
  int map_version_ = 0;
  std::unordered_map<std::string, Nanos> cache_;  // path -> acquired time
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
};

// ---------------------------------------------------------------------------

class CephCluster {
 public:
  CephCluster(Simulation& sim, Network& network, CephConfig config);
  ~CephCluster();

  void Start();

  Simulation& sim() { return sim_; }
  Network& network() { return network_; }
  const CephConfig& config() const { return config_; }

  CephMds& mds(int rank) { return *mds_[rank]; }
  int num_mds() const { return static_cast<int>(mds_.size()); }
  CephOsd& osd(int i) { return *osds_[i]; }
  int num_osds() const { return static_cast<int>(osds_.size()); }
  CephClient* AddClient(AzId az);
  CephClient* client(int id) { return clients_[id].get(); }

  // Namespace authority.
  int OwnerOf(const std::string& path) const;
  int map_version() const { return map_version_; }
  Nanos subtree_frozen_until(const std::string& path) const;

  // Loads the initial namespace (dirs before files).
  void BootstrapNamespace(const std::vector<std::string>& dirs,
                          const std::vector<std::string>& files);

  // Pre-warms every client's kernel cache with the given (hot) paths —
  // steady state for a long-running mount, which a sub-second simulated
  // window cannot reach organically. Entries are validated against the
  // mutation registry, so they invalidate correctly.
  void PrewarmClientCaches(const std::vector<std::string>& paths);

  // Mutation registry: lets prewarmed cache entries (which have no real
  // capability registered) detect staleness without a recall message.
  void NoteMutation(const std::string& path) {
    last_mutation_[path] = sim_.now();
  }
  Nanos last_mutation(const std::string& path) const {
    auto it = last_mutation_.find(path);
    return it == last_mutation_.end() ? -1 : it->second;
  }

  // Replicated object write/read against the OSD pool.
  void WriteObject(HostId from, uint64_t key_hash, int64_t bytes,
                   std::function<void()> done);

  void ResetStats();

  // The subtree index used for authority: "/user/uX/..." -> X+1, else 0.
  static int SubtreeIndex(const std::string& path);
  static std::string SubtreePrefix(int subtree);

 private:
  void BalanceOnce();

  Simulation& sim_;
  Network& network_;
  CephConfig config_;
  std::vector<std::unique_ptr<CephOsd>> osds_;
  std::vector<std::unique_ptr<CephMds>> mds_;
  std::vector<std::unique_ptr<CephClient>> clients_;
  // subtree -> owning rank; index 0 is the root/misc subtree.
  std::vector<int> subtree_owner_;
  std::unordered_map<std::string, Nanos> last_mutation_;
  std::unordered_map<int, Nanos> frozen_until_;  // migrating subtrees
  int map_version_ = 1;
  std::vector<Simulation::PeriodicHandle> timers_;
  Rng rng_;
};

}  // namespace repro::cephfs
