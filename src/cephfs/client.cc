#include "cephfs/cluster.h"

namespace repro::cephfs {

CephClient::CephClient(CephCluster& cluster, int id, HostId host, AzId az)
    : cluster_(cluster), id_(id), host_(host), az_(az),
      rng_(cluster.sim().rng().Split()),
      map_version_(cluster.map_version()) {}

void CephClient::InvalidateCap(const std::string& path) {
  cache_.erase(path);
}

bool CephClient::CacheServes(FsOp op, const std::string& path) const {
  if (cluster_.config().variant == CephVariant::kSkipKCache) return false;
  if (op != FsOp::kStat && op != FsOp::kOpenRead && op != FsOp::kListDir) {
    return false;
  }
  auto it = cache_.find(path);
  if (it == cache_.end()) return false;
  // Entry is valid while no mutation postdates its acquisition (recalls
  // erase entries eagerly; this check covers prewarmed entries).
  return it->second >= cluster_.last_mutation(path);
}

void CephClient::Execute(FsOp op, const std::string& path,
                         const std::string& path2, int64_t size,
                         std::function<void(Status)> done) {
  if (CacheServes(op, path)) {
    // Kernel-cache hit: served locally under a valid capability.
    ++cache_hits_;
    cluster_.sim().After(cluster_.config().client_cache_hit_cost,
                         [done = std::move(done)] { done(OkStatus()); });
    return;
  }
  ++cache_misses_;
  CephRequest req;
  req.op = op;
  req.path = path;
  req.path2 = path2;
  req.size = size;
  req.client_id = id_;
  req.want_cap = cluster_.config().variant != CephVariant::kSkipKCache;
  SendToMds(std::move(req), std::move(done), 1);
}

void CephClient::SendToMds(CephRequest req, std::function<void(Status)> done,
                           int attempt) {
  if (attempt > 4) {
    done(Unavailable("mds forwarding loop"));
    return;
  }
  req.map_version = map_version_;
  CephMds& mds = cluster_.mds(cluster_.OwnerOf(req.path));
  auto& net = cluster_.network();
  const int64_t bytes = 260 + static_cast<int64_t>(req.path.size());
  net.Send(host_, mds.host(), bytes, [this, &mds, req = std::move(req),
                                      done = std::move(done),
                                      attempt]() mutable {
    mds.HandleRequest(
        req, [this, &mds, req, done = std::move(done),
              attempt](CephReply reply) mutable {
          cluster_.network().Send(
              mds.host(), host_, 220,
              [this, req = std::move(req), reply = std::move(reply),
               done = std::move(done), attempt]() mutable {
                if (reply.forwarded) {
                  map_version_ = reply.map_version;
                  SendToMds(std::move(req), std::move(done), attempt + 1);
                  return;
                }
                map_version_ = reply.map_version;
                if (reply.cap_granted && reply.status.ok()) {
                  if (static_cast<int>(cache_.size()) >=
                      cluster_.config().client_cache_entries) {
                    cache_.erase(cache_.begin());
                  }
                  cache_[req.path] = cluster_.sim().now();
                }
                done(reply.status);
              });
        });
  });
}

}  // namespace repro::cephfs
