#include "cephfs/cluster.h"

#include "util/strings.h"

namespace repro::cephfs {

const char* CephVariantLabel(CephVariant variant) {
  switch (variant) {
    case CephVariant::kDefault: return "CephFS";
    case CephVariant::kDirPinned: return "CephFS - DirPinned";
    case CephVariant::kSkipKCache: return "CephFS - SkipKCache";
  }
  return "?";
}

CephOsd::CephOsd(Simulation& sim, int id, HostId host, AzId az,
                 const CephConfig& config)
    : id_(id), host_(host), az_(az),
      cpu_(sim, StrFormat("osd%d.cpu", id), config.osd_cpu_threads),
      disk_(sim, StrFormat("osd%d.disk", id), 80 * kMicrosecond,
            config.osd_disk_read_bps, config.osd_disk_write_bps) {
  (void)config;
}

void CephOsd::WriteObject(int64_t bytes, std::function<void()> done) {
  cpu_.Submit(40 * kMicrosecond, [this, bytes, done = std::move(done)] {
    disk_.Write(bytes, std::move(done));
  });
}

void CephOsd::ReadObject(int64_t bytes, std::function<void()> done) {
  cpu_.Submit(40 * kMicrosecond, [this, bytes, done = std::move(done)] {
    disk_.Read(bytes, std::move(done));
  });
}

void CephOsd::ResetStats() {
  cpu_.ResetStats();
  disk_.ResetStats();
}

}  // namespace repro::cephfs
