// CephFS model configuration (§II related work + §V-A).
//
// The baseline reproduces the mechanisms the paper credits for CephFS's
// behaviour: a single-threaded MDS (the MDS global lock) that journals
// metadata updates to the OSDs, client capabilities backing a kernel-side
// metadata cache, and namespace partitioning across MDSs — dynamic (the
// default balancer), manually pinned (DirPinned), or with the client
// cache disabled (SkipKCache).
#pragma once

#include "util/time.h"

namespace repro::cephfs {

enum class CephVariant {
  kDefault,     // dynamic subtree partitioning + kernel cache
  kDirPinned,   // static subtree pins + kernel cache
  kSkipKCache,  // dynamic + kernel cache bypassed
};
const char* CephVariantLabel(CephVariant variant);

struct CephConfig {
  int num_mds = 1;
  int num_osds = 12;      // same count as the NDB datanodes (§V-A)
  int replication = 3;    // HA across 3 AZs

  CephVariant variant = CephVariant::kDefault;

  // MDS costs: one thread == the MDS global lock. The base cost matches
  // DirPinned's ~4.2K req/s on a single MDS (Fig. 6).
  Nanos mds_op_cost = 200 * kMicrosecond;
  Nanos mds_forward_cost = 40 * kMicrosecond;  // misrouted request
  // Capability bookkeeping: invalidating one holder costs CPU and a
  // message; Ceph bounds the recall batch.
  Nanos cap_invalidate_cost = 8 * kMicrosecond;
  int max_cap_holders = 256;

  // Journaling: every MDS-handled op appends a journal entry (full inode
  // + dentry dumps for updates, session/cap records for reads); segments
  // are flushed to the OSDs periodically (Fig. 12d's disk curve). When
  // flushed segments pile up faster than the OSD pool absorbs them, the
  // journaler backpressures the single MDS thread — the "journal flushing
  // time reduces available resources" effect (§V-C) that caps DirPinned
  // past ~24 MDSs.
  int64_t journal_bytes_per_op = 4096;
  int64_t journal_read_bytes_per_op = 1024;
  int64_t journal_segment_bytes = 256 << 10;
  Nanos journal_flush_interval = 50 * kMillisecond;
  Nanos journal_flush_cpu = 150 * kMicrosecond;
  int64_t journal_inflight_limit = 1 << 20;  // backpressure threshold
  Nanos journal_stall_cost = 2 * kMillisecond;

  // OSD: CPU pool + disk (standard persistent disks in the paper's era).
  int osd_cpu_threads = 2;
  Nanos osd_op_cost = 40 * kMicrosecond;
  double osd_disk_write_bps = 30e6;   // effective small-write throughput
  double osd_disk_read_bps = 90e6;

  // Client kernel cache.
  Nanos client_cache_hit_cost = 25 * kMicrosecond;
  int client_cache_entries = 16384;

  // Dynamic balancer (default variant only).
  Nanos balance_interval = 10 * kSecond;
  Nanos migration_pause = 30 * kMillisecond;

  Nanos client_rpc_timeout = 5 * kSecond;
};

}  // namespace repro::cephfs
